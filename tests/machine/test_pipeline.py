"""Scoreboard pipeline tests: issue rules, dependencies, latencies, FDIV."""

import pytest

from repro.machine.cache import CacheConfig, CacheHierarchy
from repro.machine.isa import addi, fdiv, fmla, fmul, ldrv, nop, prfm, strv
from repro.machine.machines import KUNPENG_920, XEON_GOLD_6240
from repro.machine.pipeline import (AddressSpace, IssueRules, Latencies,
                                    PipelineModel, TimingResult)
from repro.machine.program import Program


def make_pipe(machine=KUNPENG_920, warm_bytes=4096):
    caches = machine.make_caches()
    caches.warm_range(0, warm_bytes, "l1")
    return machine.make_pipeline(caches)


def simulate(instrs, machine=KUNPENG_920, ew=8, lanes=2, init=None):
    pipe = make_pipe(machine)
    return pipe.simulate(Program("t", instrs, ew=ew, lanes=lanes),
                         init or {0: 0, 1: 1024, 2: 2048})


class TestIssueRules:
    def test_dp_one_fma_per_cycle(self):
        """Kunpeng: fp64 issues at most one FP op per cycle -> N FMAs on
        independent accumulators take ~N cycles."""
        instrs = [fmul(i % 8, 8 + i % 8, 16 + i % 8, ew=8)
                  for i in range(32)]
        # make them fully independent: distinct destinations, sources ready
        instrs = [fmul(i % 28, 28, 29, ew=8) for i in range(28)]
        r = simulate([fmul(28, 28, 28, ew=8)] * 0 + instrs)
        assert r.cycles >= 28

    def test_sp_two_fp_per_cycle(self):
        """fp32 dual-issues FP -> ~N/2 cycles for N independent FMULs
        (the paper's single-precision special case)."""
        instrs = [fmul(i, 30, 31, ew=4) for i in range(28)]
        r = simulate(instrs, ew=4, lanes=4)
        assert r.cycles <= 28 // 2 + 3

    def test_one_mem_per_cycle(self):
        instrs = [ldrv(i, 0, i * 16) for i in range(16)]
        r = simulate(instrs)
        assert r.cycles >= 16

    def test_xeon_two_mem_per_cycle(self):
        instrs = [ldrv(i, 0, i * 64, ew=8) for i in range(16)]
        r = simulate(instrs, machine=XEON_GOLD_6240, lanes=8)
        assert r.cycles <= 16 // 2 + 2

    def test_load_pairs_with_fp_same_cycle(self):
        """Kunpeng can co-issue one load + one FP op."""
        instrs = []
        for i in range(8):
            instrs.append(ldrv(i, 0, i * 16))
            instrs.append(fmul(8 + i, 30, 31, ew=8))
        r = simulate(instrs)
        # 16 instructions, 2-wide with 1 mem + 1 fp per cycle -> ~8 cycles
        assert r.cycles <= 10

    def test_width_bounds_total(self):
        rules = IssueRules(width=1, max_mem=1, max_fp32=1, max_fp64=1,
                           max_int=1)
        lat = Latencies()
        caches = CacheHierarchy(CacheConfig(1024, 2, 64, 10),
                                CacheConfig(4096, 4, 64), 100)
        caches.warm_range(0, 1024, "l1")
        pipe = PipelineModel(rules, lat, caches, 16)
        prog = Program("t", [nop() for _ in range(10)], ew=8, lanes=2)
        r = pipe.simulate(prog, {})
        assert r.cycles >= 10


class TestDependencies:
    def test_raw_dependency_stalls(self):
        dep = simulate([fmul(0, 30, 31, ew=8), fmul(1, 0, 31, ew=8)])
        indep = simulate([fmul(0, 30, 31, ew=8), fmul(1, 30, 31, ew=8)])
        assert dep.cycles > indep.cycles

    def test_accumulator_chain_costs_latency(self):
        """Dependent FMA chain: each link pays the full FMA latency."""
        n = 10
        chain = simulate([fmla(0, 30, 31, ew=8) for _ in range(n)])
        lat = KUNPENG_920.lat.fp_ma
        assert chain.cycles >= (n - 1) * lat

    def test_load_use_latency(self):
        r1 = simulate([ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)])
        r2 = simulate([ldrv(0, 0, 0), fmul(1, 30, 30, ew=8)])
        # wait... v30 uninitialized is fine for timing (ready at 0)
        assert r1.cycles - r2.cycles >= KUNPENG_920.lat.load_use - 1

    def test_addi_creates_address_dependency(self):
        dep = simulate([addi(0, 0, 16), ldrv(0, 0, 0)])
        indep = simulate([addi(3, 0, 16), ldrv(0, 0, 0)])
        assert dep.cycles >= indep.cycles

    def test_in_order_issue(self):
        """A stalled instruction blocks everything behind it (in-order)."""
        stalled_first = simulate([
            fmla(0, 30, 31, ew=8), fmla(0, 30, 31, ew=8),  # chain
            fmul(1, 30, 31, ew=8),                          # independent
        ])
        free_first = simulate([
            fmul(1, 30, 31, ew=8),
            fmla(0, 30, 31, ew=8), fmla(0, 30, 31, ew=8),
        ])
        assert free_first.cycles <= stalled_first.cycles


class TestMemoryTiming:
    def test_cold_load_pays_miss(self):
        pipe = make_pipe(warm_bytes=64)      # only first line warm
        prog = Program("t", [ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                       ew=8, lanes=2)
        warm = pipe.simulate(prog, {0: 0})
        pipe2 = make_pipe(warm_bytes=64)
        cold = pipe2.simulate(prog, {0: 1 << 16})
        assert cold.cycles > warm.cycles + 50

    def test_prfm_hides_latency(self):
        machine = KUNPENG_920
        caches = machine.make_caches()
        pipe = machine.make_pipeline(caches)
        fillers = [fmul(2, 30, 31, ew=8) for _ in range(40)]
        with_pf = Program("t", [prfm(0, 0)] + fillers
                          + [ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                          ew=8, lanes=2)
        r1 = pipe.simulate(with_pf, {0: 0})
        caches2 = machine.make_caches()
        pipe2 = machine.make_pipeline(caches2)
        without = Program("t", fillers + [ldrv(0, 0, 0),
                                          fmul(1, 0, 0, ew=8)],
                          ew=8, lanes=2)
        r2 = pipe2.simulate(without, {0: 0})
        assert r1.cycles < r2.cycles

    def test_l1_miss_counted(self):
        pipe = make_pipe(warm_bytes=64)
        prog = Program("t", [ldrv(0, 0, 0)], ew=8, lanes=2)
        r = pipe.simulate(prog, {0: 1 << 18})
        assert r.l1_misses >= 1


class TestFDIV:
    def test_fdiv_blocks_fp_pipe(self):
        with_div = simulate([fdiv(0, 30, 31, ew=8)]
                            + [fmul(i, 28, 29, ew=8) for i in range(1, 10)])
        without = simulate([fmul(0, 30, 31, ew=8)]
                           + [fmul(i, 28, 29, ew=8) for i in range(1, 10)])
        assert with_div.cycles >= without.cycles + \
            KUNPENG_920.lat.div_block64 - 2

    def test_fdiv32_cheaper_than_fdiv64(self):
        d32 = simulate([fdiv(0, 30, 31, ew=4), fmul(1, 0, 0, ew=4)],
                       ew=4, lanes=4)
        d64 = simulate([fdiv(0, 30, 31, ew=8), fmul(1, 0, 0, ew=8)])
        assert d32.cycles < d64.cycles


class TestTimingResult:
    def test_add_and_scale(self):
        a = TimingResult(10, 1, 5, 2, 3, 2, 1, 0)
        b = TimingResult(20, 3, 7, 1, 4, 3, 0, 1)
        c = a + b
        assert c.cycles == 30 and c.instructions == 12
        assert c.drain_cycles == 3
        s = a.scaled(4)
        assert s.cycles == 40 and s.fp_issued == 12

    def test_ipc(self):
        assert TimingResult(10, 0, 20, 0, 0, 0, 0, 0).ipc == 2.0


class TestAddressSpace:
    def test_placement_alignment_and_disjointness(self):
        asp = AddressSpace()
        a = asp.place("a", 100)
        b = asp.place("b", 100)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 100
        assert "a" in asp and asp.base("a") == a
        assert asp.extent("b") == (b, 100)


def test_dgemm_kernel_reaches_near_peak():
    """End-to-end sanity: the optimized 4x4 DGEMM kernel sustains >85%
    of the machine's DP peak on warm caches (Figure 5's end state)."""
    from repro.codegen.generator_gemm import generate_gemm_kernel
    from repro.codegen.optimizer import schedule_program
    m = KUNPENG_920
    prog = schedule_program(generate_gemm_kernel(4, 4, 32, "d", m), m)
    caches = m.make_caches()
    pipe = m.make_pipeline(caches)
    asp = AddressSpace()
    aA = asp.place("pA", 4 * 32 * 16)
    aB = asp.place("pB", 4 * 32 * 16)
    aC = asp.place("C", 512)
    caches.warm_range(aA, 4 * 32 * 16)
    caches.warm_range(aB, 4 * 32 * 16)
    caches.warm_range(aC, 512)
    init = {0: aA, 1: aB}
    init.update({2 + j: aC + j * 64 for j in range(4)})
    r = pipe.simulate(prog, init)
    gflops = m.gflops(prog.flops_per_group, r.cycles)
    assert gflops > 0.85 * m.peak_gflops("d")
