"""Concurrent correctness: many submitter threads, one shared service.

Requests are generated up front on the main thread (numpy Generators
are not thread-safe) and each thread's results are compared bit for bit
against serial execution — interleaving with other tenants' traffic
must be invisible in the numbers.
"""

import threading
from concurrent.futures import Future

import numpy as np

from repro import IATF
from repro.errors import RejectedError
from repro.serve import BlasService
from repro.serve.client import make_request

from .test_service import serial_result

N_THREADS = 8
PER_THREAD = 24


def _gen_requests(seed: int, count: int):
    rng = np.random.default_rng(seed)
    return [make_request(rng, i, tenants=(f"tenant{seed}",))
            for i in range(count)]


class TestConcurrentSubmitters:
    def test_parallel_mixed_traffic_bit_identical_to_serial(self):
        per_thread = {t: _gen_requests(t, PER_THREAD)
                      for t in range(N_THREADS)}
        results: "dict[int, list]" = {}
        errors: "list[Exception]" = []

        with BlasService(max_batch=16, max_wait_ms=1.0,
                         max_in_flight=4 * PER_THREAD) as svc:
            def work(t: int) -> None:
                try:
                    futs = [svc.submit(r) for r in per_thread[t]]
                    results[t] = [f.result(timeout=120.0) for f in futs]
                except Exception as exc:   # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=work, args=(t,))
                       for t in range(N_THREADS)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
        stats = svc.stats()        # after stop: every callback has run

        assert not errors
        for t in range(N_THREADS):
            for req, out in zip(per_thread[t], results[t]):
                want = serial_result(req)
                assert out.tobytes() == want.tobytes(), \
                    f"thread {t}: coalesced != serial for {req.describe()}"
        total = N_THREADS * PER_THREAD
        assert stats["requests"]["completed"] == total
        # cross-thread coalescing happened: same-key requests from
        # different tenants shared flushes
        assert stats["coalesce"]["flushes"] < total
        assert stats["admission"]["in_flight"] == 0

    def test_submission_racing_stop_never_loses_a_result(self):
        """Every submit either returns a future that resolves, or raises
        a typed RejectedError — nothing hangs, nothing vanishes."""
        rng = np.random.default_rng(99)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        svc = BlasService(max_batch=8, max_wait_ms=0.5)
        svc.start()
        futures: "list[Future]" = []
        rejected = 0
        lock = threading.Lock()

        def spam() -> None:
            nonlocal rejected
            from repro.serve import Request
            for _ in range(50):
                try:
                    f = svc.submit(Request.gemm(a, a))
                except RejectedError:
                    with lock:
                        rejected += 1
                else:
                    with lock:
                        futures.append(f)

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for th in threads:
            th.start()
        svc.stop()                 # race the stop against the submitters
        for th in threads:
            th.join()
        for fut in futures:
            assert fut.result(timeout=60.0) is not None
        assert len(futures) + rejected == 4 * 50
