"""Request validation: InvalidProblemError at the API boundary."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.serve import Request
from repro.types import GemmProblem, Side, Trans


def mats(*shapes, dtype=np.float32):
    rng = np.random.default_rng(5)
    return [rng.standard_normal(s).astype(dtype) for s in shapes]


class TestGemmRequests:
    def test_builds_batch1_problem(self):
        a, b, c = mats((4, 6), (6, 5), (4, 5))
        req = Request.gemm(a, b, c, beta=1.0)
        assert req.routine == "gemm"
        assert req.problem == GemmProblem(4, 5, 6, "s", batch=1, beta=1.0)
        assert req.key == req.problem          # the coalescing key
        assert req.out_shape == (4, 5)

    def test_transpose_modes_resolve_shapes(self):
        a, b = mats((6, 4), (5, 6))            # A stored k x m, B n x k
        req = Request.gemm(a, b, transa="T", transb="T")
        p = req.problem
        assert (p.m, p.n, p.k) == (4, 5, 6)
        assert p.transa is Trans.T and p.transb is Trans.T

    def test_mismatched_b_rejected_with_dims_named(self):
        a, b = mats((4, 6), (3, 5))
        with pytest.raises(InvalidProblemError, match="B is 3x5"):
            Request.gemm(a, b)

    def test_mismatched_c_rejected(self):
        a, b, c = mats((4, 6), (6, 5), (4, 4))
        with pytest.raises(InvalidProblemError, match="C is 4x4"):
            Request.gemm(a, b, c)

    def test_omitted_c_requires_beta_zero(self):
        a, b = mats((4, 4), (4, 4))
        req = Request.gemm(a, b)               # beta defaults to 0
        assert req.c is not None and not req.c.any()
        with pytest.raises(InvalidProblemError, match="beta"):
            Request.gemm(a, b, beta=1.0)

    def test_batched_operand_rejected(self):
        a, b = mats((2, 4, 4), (4, 4))
        with pytest.raises(InvalidProblemError, match="2-D"):
            Request.gemm(a, b)

    def test_non_array_rejected(self):
        with pytest.raises(InvalidProblemError, match="numpy array"):
            Request.gemm([[1.0]], np.ones((1, 1)))

    def test_complex_alpha_on_real_dtype_rejected(self):
        a, b = mats((4, 4), (4, 4))
        with pytest.raises(InvalidProblemError, match="alpha"):
            Request.gemm(a, b, alpha=1 + 2j)

    def test_operands_cast_to_problem_dtype(self):
        a, b = mats((4, 4), (4, 4), dtype=np.float64)
        req = Request.gemm(a, b, dtype="s")
        assert req.a.dtype == np.float32
        assert req.problem.dtype.value == "s"

    def test_bad_tenant_and_deadline_rejected(self):
        a, b = mats((4, 4), (4, 4))
        with pytest.raises(InvalidProblemError, match="tenant"):
            Request.gemm(a, b, tenant="")
        with pytest.raises(InvalidProblemError, match="deadline"):
            Request.gemm(a, b, deadline_ms=-1.0)
        with pytest.raises(InvalidProblemError, match="deadline"):
            Request.gemm(a, b, deadline_ms="soon")


class TestTrsmRequests:
    def test_builds_batch1_problem(self):
        a, b = mats((5, 5), (5, 3), dtype=np.float64)
        req = Request.trsm(np.tril(a) + 5 * np.eye(5), b)
        p = req.problem
        assert req.routine == "trsm"
        assert (p.m, p.n, p.batch) == (5, 3, 1)
        assert p.mode == "LNLN"
        assert req.out_shape == (5, 3)
        assert req.c is None

    def test_right_side_wants_n_by_n_a(self):
        a, b = mats((5, 5), (5, 3), dtype=np.float64)
        with pytest.raises(InvalidProblemError, match="side=R"):
            Request.trsm(a, b, side="R")       # needs 3x3
        req = Request.trsm(mats((3, 3), dtype=np.float64)[0], b, side="R")
        assert req.problem.side is Side.RIGHT

    def test_non_square_a_rejected(self):
        a, b = mats((5, 4), (5, 3))
        with pytest.raises(InvalidProblemError, match="A is 5x4"):
            Request.trsm(a, b)

    def test_describe_names_the_request(self):
        a, b = mats((4, 6), (6, 5))
        text = Request.gemm(a, b, tenant="alice").describe()
        assert "gemm[s] 4x5x6" in text
        assert "tenant=alice" in text
