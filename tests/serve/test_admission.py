"""Admission control: typed rejection, per-tenant fairness, accounting."""

import pytest

from repro import obs
from repro.errors import RejectedError
from repro.serve import AdmissionController


class TestLimits:
    def test_per_tenant_in_flight_limit(self):
        ac = AdmissionController(max_in_flight=2, max_queue_depth=100)
        ac.admit("hog")
        ac.admit("hog")
        with pytest.raises(RejectedError, match="in-flight limit"):
            ac.admit("hog")
        ac.admit("polite")                     # other tenants unaffected

    def test_global_queue_depth_limit(self):
        ac = AdmissionController(max_in_flight=100, max_queue_depth=3)
        for t in ("a", "b", "c"):
            ac.admit(t)
        with pytest.raises(RejectedError, match="queue full"):
            ac.admit("d")

    def test_rejection_is_typed_and_names_the_tenant(self):
        ac = AdmissionController(max_in_flight=1, max_queue_depth=100)
        ac.admit("hog")
        with pytest.raises(RejectedError) as err:
            ac.admit("hog")
        assert not isinstance(err.value, (ValueError, TypeError))
        assert err.value.tenant == "hog"
        assert "hog" in str(err.value)

    def test_release_frees_the_slot(self):
        ac = AdmissionController(max_in_flight=1, max_queue_depth=100)
        ac.admit("t")
        ac.release("t")
        ac.admit("t")                          # no raise
        assert ac.in_flight == 1

    def test_release_of_unknown_tenant_is_harmless(self):
        ac = AdmissionController()
        ac.release("ghost")
        assert ac.in_flight == 0

    def test_degenerate_limits_rejected(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionController(max_queue_depth=0)


class TestAccounting:
    def test_stats_shape_and_totals(self):
        ac = AdmissionController(max_in_flight=2, max_queue_depth=100)
        ac.admit("a")
        ac.admit("a")
        ac.admit("b")
        with pytest.raises(RejectedError):
            ac.admit("a")
        s = ac.stats()
        assert s == {"in_flight": 3, "admitted": 3, "rejected": 1,
                     "max_in_flight": 2, "max_queue_depth": 100,
                     "tenants": {"a": 2, "b": 1}}
        ac.release("a")
        assert ac.stats()["tenants"] == {"a": 1, "b": 1}

    def test_counters_and_reject_event_mirror_into_obs(self):
        with obs.scoped() as reg:
            ac = AdmissionController(max_in_flight=1, max_queue_depth=100)
            ac.admit("hog")
            with pytest.raises(RejectedError):
                ac.admit("hog")
            counters = reg.counters()
            events = reg.events.tail(10, prefix="serve.")
        assert counters["serve.admitted"] == 1
        assert counters["serve.rejected"] == 1
        assert any(e["name"] == "serve.reject" and e["level"] == "warn"
                   and e["fields"]["tenant"] == "hog" for e in events)
