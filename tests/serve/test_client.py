"""Client wrappers: sync blocking calls, asyncio bridging, traffic gen."""

import asyncio

import numpy as np
import pytest

from repro.serve import (AsyncServiceClient, BlasService, Request,
                         ServiceClient, run_traffic)
from repro.serve.client import TRAFFIC_SHAPES, make_request

from .test_service import serial_result


@pytest.fixture()
def service():
    svc = BlasService(max_batch=8, max_wait_ms=0.5)
    svc.start()
    yield svc
    svc.stop()


class TestSyncClient:
    def test_gemm_blocks_and_matches_serial(self, service):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((6, 5))
        client = ServiceClient(service, tenant="alice")
        out = client.gemm(a, b)
        want = serial_result(Request.gemm(a, b))
        assert out.tobytes() == want.tobytes()

    def test_trsm_blocks_and_matches_serial(self, service):
        rng = np.random.default_rng(1)
        a = np.tril(rng.standard_normal((5, 5))) + 5 * np.eye(5)
        b = rng.standard_normal((5, 3))
        out = ServiceClient(service).trsm(a, b)
        want = serial_result(Request.trsm(a, b))
        assert out.tobytes() == want.tobytes()

    def test_client_tenant_rides_on_every_submit(self, service):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((4, 4))
        client = ServiceClient(service, tenant="alice")
        client.submit_gemm(a, a).result(60.0)
        client.submit_gemm(a, a, tenant="bob").result(60.0)  # override
        service.stop()      # joins the pump: all slots released
        assert service.admission.stats()["tenants"] == {}
        assert service.stats()["requests"]["submitted"] == 2


class TestAsyncClient:
    def test_concurrent_coroutines_share_flushes(self, service):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((4, 4))
        client = AsyncServiceClient(service, tenant="async")

        async def fanout():
            return await asyncio.gather(
                *(client.gemm(a, a) for _ in range(8)))

        outs = asyncio.run(fanout())
        want = serial_result(Request.gemm(a, a))
        for out in outs:
            assert out.tobytes() == want.tobytes()
        # eight identical coroutines coalesced to one full bucket
        service.stop()
        assert service.stats()["coalesce"]["max_occupancy"] == 8

    def test_async_trsm_and_submit(self, service):
        rng = np.random.default_rng(4)
        a = np.tril(rng.standard_normal((5, 5))) + 5 * np.eye(5)
        b = rng.standard_normal((5, 3))
        client = AsyncServiceClient(service)

        async def go():
            x = await client.trsm(a, b)
            y = await client.submit(Request.trsm(a, b))
            return x, y

        x, y = asyncio.run(go())
        assert x.tobytes() == y.tobytes()
        assert x.tobytes() == serial_result(Request.trsm(a, b)).tobytes()


class TestTrafficGenerator:
    def test_make_request_is_deterministic(self):
        r1 = [make_request(np.random.default_rng(5), i) for i in range(20)]
        r2 = [make_request(np.random.default_rng(5), i) for i in range(20)]
        for x, y in zip(r1, r2):
            assert x.problem == y.problem
            assert x.a.tobytes() == y.a.tobytes()

    def test_traffic_covers_both_routines(self):
        rng = np.random.default_rng(6)
        routines = {make_request(rng, i).routine for i in range(40)}
        assert routines == {"gemm", "trsm"}
        assert any(k is None for _, _, k in TRAFFIC_SHAPES)

    def test_run_traffic_totals_add_up(self, service):
        result = run_traffic(service, n_requests=48, seed=7,
                             tenants=("alice", "bob"))
        assert result["submitted"] == 48
        assert result["accepted"] + result["rejected"] == 48
        assert result["completed"] == result["accepted"]   # no failures
        assert result["failed"] == 0
        assert result["throughput_rps"] > 0

    def test_run_traffic_counts_rejections_not_raises(self):
        # pin the tenant's whole budget with requests that can never
        # flush on their own; every generator submission must then be
        # absorbed as a rejection, not an exception
        rng = np.random.default_rng(8)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        svc = BlasService(max_batch=1024, max_wait_ms=60_000.0,
                          max_in_flight=2, max_queue_depth=1024)
        svc.start()
        try:
            held = [svc.submit(Request.gemm(a, a, tenant="solo"))
                    for _ in range(2)]
            result = run_traffic(svc, n_requests=16, seed=8,
                                 tenants=("solo",))
        finally:
            svc.stop()
        assert result == {**result, "submitted": 16, "accepted": 0,
                          "rejected": 16, "completed": 0, "failed": 0}
        for fut in held:                       # drained at stop
            assert fut.result(timeout=1.0) is not None
