"""Coalescer bucketing policy, driven with a fake clock."""

import numpy as np
import pytest

from repro.serve import Coalescer, PendingRequest, Request


def req(m=4, n=4, k=4, dtype="s", deadline_ms=None):
    rng = np.random.default_rng(7)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    return Request.gemm(a, b, dtype=dtype, deadline_ms=deadline_ms)


def entry(request, now=0.0):
    deadline = (None if request.deadline_ms is None
                else now + request.deadline_ms / 1000.0)
    return PendingRequest(request=request, future=None,
                          t_submit=now, deadline_at=deadline)


class TestBucketing:
    def test_full_bucket_returned_immediately(self):
        co = Coalescer(max_batch=3, max_wait_ms=1000.0)
        assert co.add(entry(req()), now=0.0) is None
        assert co.add(entry(req()), now=0.1) is None
        bucket = co.add(entry(req()), now=0.2)
        assert bucket is not None and len(bucket) == 3
        assert co.pending == 0                 # released with the bucket

    def test_incompatible_requests_bucket_separately(self):
        co = Coalescer(max_batch=2, max_wait_ms=1000.0)
        assert co.add(entry(req(dtype="s")), 0.0) is None
        assert co.add(entry(req(dtype="d")), 0.0) is None
        assert co.pending == 2                 # two open buckets of 1
        full = co.add(entry(req(dtype="s")), 0.0)
        assert full is not None
        assert full.key.dtype.value == "s"
        assert co.pending == 1                 # the "d" one still waits

    def test_compatibility_is_the_full_descriptor(self):
        # same shape, different alpha -> different descriptor -> no mix
        rng = np.random.default_rng(1)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        co = Coalescer(max_batch=2, max_wait_ms=1000.0)
        co.add(entry(Request.gemm(a, a, alpha=1.0)), 0.0)
        assert co.add(entry(Request.gemm(a, a, alpha=2.0)), 0.0) is None
        assert co.pending == 2

    def test_pop_due_honours_max_wait(self):
        co = Coalescer(max_batch=64, max_wait_ms=2.0)
        co.add(entry(req()), now=1.0)          # due at 1.002
        assert co.pop_due(1.001) == []
        due = co.pop_due(1.002)
        assert len(due) == 1 and len(due[0]) == 1
        assert co.pending == 0

    def test_timer_anchored_to_bucket_open_not_last_add(self):
        # a steady trickle must not postpone the flush forever
        co = Coalescer(max_batch=64, max_wait_ms=10.0)
        co.add(entry(req()), now=0.000)
        co.add(entry(req()), now=0.009)        # arrives just before due
        assert co.next_due() == pytest.approx(0.010)
        assert len(co.pop_due(0.010)) == 1

    def test_tight_deadline_accelerates_the_flush(self):
        co = Coalescer(max_batch=64, max_wait_ms=100.0)
        co.add(entry(req()), now=0.0)          # due at 0.1
        co.add(entry(req(deadline_ms=5.0), now=0.001), now=0.001)
        assert co.next_due() == pytest.approx(0.006)
        assert len(co.pop_due(0.006)) == 1

    def test_pop_all_drains_everything(self):
        co = Coalescer(max_batch=64, max_wait_ms=1000.0)
        co.add(entry(req(dtype="s")), 0.0)
        co.add(entry(req(dtype="d")), 0.0)
        buckets = co.pop_all()
        assert sorted(b.key.dtype.value for b in buckets) == ["d", "s"]
        assert co.pending == 0
        assert co.next_due() is None
        assert co.pop_all() == []

    def test_next_due_is_the_earliest_bucket(self):
        co = Coalescer(max_batch=64, max_wait_ms=10.0)
        assert co.next_due() is None
        co.add(entry(req(dtype="s")), now=5.0)
        co.add(entry(req(dtype="d")), now=2.0)
        assert co.next_due() == pytest.approx(2.010)

    def test_degenerate_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            Coalescer(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            Coalescer(max_wait_ms=-1.0)

    def test_max_batch_one_never_parks(self):
        co = Coalescer(max_batch=1, max_wait_ms=1000.0)
        bucket = co.add(entry(req()), 0.0)
        assert bucket is not None and len(bucket) == 1
        assert co.pending == 0
