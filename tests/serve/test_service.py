"""BlasService end to end: correctness, admission, draining, stats.

The load-bearing test is the 512-request sweep: mixed GEMM/TRSM traffic
over several shapes, dtypes, and tenants, every coalesced result
compared **bit for bit** against serial per-request execution through a
fresh IATF.  That is the service's whole contract — coalescing is an
implementation detail callers must not be able to observe in their
numbers.
"""

import json

import numpy as np
import pytest

from repro import IATF, obs
from repro.errors import InvalidProblemError, RejectedError
from repro.serve import BlasService, Request
from repro.serve.client import make_request


def serial_result(req) -> np.ndarray:
    """What a dedicated batch-1 run produces for ``req``."""
    p = req.problem
    iatf = serial_result.iatf
    if req.routine == "gemm":
        return iatf.gemm(req.a[None], req.b[None], req.c[None],
                         alpha=p.alpha, beta=p.beta,
                         transa=p.transa, transb=p.transb)[0]
    return iatf.trsm(req.a[None], req.b[None], alpha=p.alpha,
                     side=p.side, uplo=p.uplo, transa=p.transa,
                     diag=p.diag)[0]


serial_result.iatf = IATF()


class TestBitIdenticalToSerial:
    def test_512_mixed_requests_match_serial_exactly(self):
        """The acceptance sweep: 512 requests, every shape/dtype/mode in
        the traffic menu, coalesced into compact batches — results must
        equal serial execution bit for bit."""
        rng = np.random.default_rng(20220829)
        reqs = [make_request(rng, i, dtypes=("s", "d", "c", "z"),
                             tenants=("alice", "bob", "carol"))
                for i in range(512)]
        with BlasService(max_batch=32, max_wait_ms=1.0) as svc:
            futs = [svc.submit(r) for r in reqs]
            outs = [f.result(timeout=120.0) for f in futs]
        stats = svc.stats()        # after stop: every callback has run
        for req, out in zip(reqs, outs):
            assert out.shape == req.out_shape
            want = serial_result(req)
            assert out.tobytes() == want.tobytes(), \
                f"coalesced != serial for {req.describe()}"
        assert stats["requests"]["completed"] == 512
        assert stats["requests"]["failed"] == 0
        # and it actually coalesced: far fewer flushes than requests
        assert stats["coalesce"]["flushes"] < 512
        assert stats["coalesce"]["ratio"] > 1.0

    def test_single_request_round_trips(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 6)).astype(np.float64)
        b = rng.standard_normal((6, 5)).astype(np.float64)
        req = Request.gemm(a, b)
        with BlasService(max_batch=8, max_wait_ms=0.5) as svc:
            out = svc.submit(req).result(timeout=60.0)
        assert out.tobytes() == serial_result(req).tobytes()

    def test_caller_operands_never_mutated(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, 5))
        a = np.tril(a) + 5 * np.eye(5)
        b = rng.standard_normal((5, 3))
        a0, b0 = a.copy(), b.copy()
        with BlasService(max_batch=4, max_wait_ms=0.5) as svc:
            x = svc.submit(Request.trsm(a, b)).result(timeout=60.0)
        assert np.array_equal(a, a0) and np.array_equal(b, b0)
        assert x.shape == (5, 3)


class TestAdmissionIntegration:
    def _held_service(self):
        # buckets can never self-flush: max_batch and max_wait are both
        # out of reach, so admitted requests pin their tenant's budget
        return BlasService(max_batch=1024, max_wait_ms=60_000.0,
                           max_in_flight=2, max_queue_depth=1024)

    def test_over_limit_tenant_rejected_in_limit_tenant_served(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        svc = self._held_service().start()
        try:
            held = [svc.submit(Request.gemm(a, a, tenant="hog"))
                    for _ in range(2)]
            with pytest.raises(RejectedError) as err:
                svc.submit(Request.gemm(a, a, tenant="hog"))
            assert err.value.tenant == "hog"
            polite = svc.submit(Request.gemm(a, a, tenant="polite"))
        finally:
            svc.stop()                         # drains the held bucket
        for fut in held + [polite]:
            assert fut.exception() is None
        stats = svc.stats()
        assert stats["admission"]["rejected"] == 1
        assert stats["requests"]["completed"] == 3
        assert stats["admission"]["in_flight"] == 0   # all released

    def test_validation_outranks_admission(self):
        # malformed input is InvalidProblemError even at full load
        with pytest.raises(InvalidProblemError):
            Request.gemm(np.ones((4, 4)), np.ones((3, 3)), tenant="hog")

    def test_submit_rejects_non_request(self):
        with BlasService(max_batch=4, max_wait_ms=0.5) as svc:
            with pytest.raises(TypeError, match="repro.serve.Request"):
                svc.submit(np.ones((4, 4)))

    def test_submit_after_stop_is_typed_rejection(self):
        svc = BlasService(max_batch=4, max_wait_ms=0.5)
        svc.start()
        svc.stop()
        rng = np.random.default_rng(3)
        a = rng.standard_normal((4, 4))
        with pytest.raises(RejectedError, match="not running"):
            svc.submit(Request.gemm(a, a))
        # a rejected submit must not leak admission budget
        assert svc.admission.in_flight == 0


class TestLifecycleAndStats:
    def test_stop_drains_underfull_buckets(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((4, 4))
        svc = BlasService(max_batch=1024, max_wait_ms=60_000.0)
        svc.start()
        futs = [svc.submit(Request.gemm(a, a)) for _ in range(5)]
        svc.stop()
        for fut in futs:
            assert fut.result(timeout=1.0) is not None
        stats = svc.stats()
        assert stats["coalesce"]["flushes"] == 1      # one drained bucket
        assert stats["coalesce"]["max_occupancy"] == 5
        assert not stats["running"]

    def test_start_is_idempotent_and_context_manager_works(self):
        svc = BlasService(max_batch=4, max_wait_ms=0.5)
        with svc as same:
            assert same is svc
            assert svc.running
            svc.start()                        # harmless second start
            assert svc.running
        assert not svc.running

    def test_stats_shape(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((4, 4))
        with BlasService(max_batch=2, max_wait_ms=0.5) as svc:
            svc.submit(Request.gemm(a, a)).result(timeout=60.0)
        s = svc.stats()            # after stop: every callback has run
        assert set(s) == {"running", "uptime_seconds", "machine",
                          "backend", "requests", "coalesce", "wait_ms",
                          "backlog", "admission", "plan_cache", "budget",
                          "flight"}
        assert s["budget"]["by_tenant"]["recorded"] == 1
        assert s["budget"]["by_tenant"]["violations"] == 0
        assert "default" in s["budget"]["by_tenant"]["groups"]
        assert s["budget"]["by_key"]["recorded"] == 1
        assert s["requests"]["by_routine"] == {"gemm": 1}
        assert s["wait_ms"]["count"] == 1
        assert 0.0 <= s["plan_cache"]["hit_rate"] <= 1.0
        assert s["uptime_seconds"] > 0.0

    def test_stats_route_serves_json(self):
        with BlasService(max_batch=4, max_wait_ms=0.5) as svc:
            body, ctype = svc.stats_route({})
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["machine"] == svc.machine.name
        assert payload["coalesce"]["max_batch"] == 4

    def test_plan_cache_shared_across_flushes(self):
        # same-shaped buckets, lane-quantized: one plan, many hits
        rng = np.random.default_rng(6)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with BlasService(max_batch=4, max_wait_ms=0.5) as svc:
            for _ in range(4):
                futs = [svc.submit(Request.gemm(a, a)) for _ in range(4)]
                for f in futs:
                    f.result(timeout=60.0)
            cache = svc.stats()["plan_cache"]
        assert cache["hits"] >= 3
        assert cache["hit_rate"] > 0.5

    def test_flush_failure_poisons_only_its_own_bucket(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with obs.scoped() as reg:
            with BlasService(max_batch=2, max_wait_ms=0.5) as svc:
                bad = Request.gemm(a, a)
                # sabotage one bucket's operands after validation: a
                # non-2D A makes compact_from_batch blow up in the flush
                object.__setattr__(bad, "a", np.ones(3, dtype=np.float32))
                f_bad = svc.submit(bad)
                f_bad2 = svc.submit(Request.gemm(a, a))  # same bucket
                with pytest.raises(Exception):
                    f_bad.result(timeout=60.0)
                with pytest.raises(Exception):
                    f_bad2.result(timeout=60.0)
                # the pump survives: a fresh, healthy bucket still flows
                ok = Request.gemm(a, a, alpha=2.0)        # distinct key
                out = svc.submit(ok).result(timeout=60.0)
            stats = svc.stats()    # after stop: every callback has run
            events = reg.events.tail(50, prefix="serve.")
        assert out.tobytes() == serial_result(ok).tobytes()
        assert stats["coalesce"]["flush_errors"] == 1
        assert stats["requests"]["failed"] == 2
        assert stats["requests"]["completed"] == 1
        assert any(e["name"] == "serve.flush.error" and
                   e["level"] == "error" for e in events)

    def test_deadline_miss_is_counted_not_dropped(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((4, 4))
        with BlasService(max_batch=1024, max_wait_ms=200.0) as svc:
            # a 1ms deadline accelerates the flush to ~1ms, but the
            # result still lands (deadlines shed latency, not work)
            fut = svc.submit(Request.gemm(a, a, deadline_ms=0.001))
            out = fut.result(timeout=60.0)
        stats = svc.stats()        # after stop: every callback has run
        assert out is not None
        assert stats["requests"]["completed"] == 1
        assert stats["requests"]["deadline_missed"] == 1
