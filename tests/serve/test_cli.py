"""``python -m repro.serve`` smoke: the CI recipe, as a test.

Boots the demo service on an ephemeral port, parses the bound address
off the startup line, and scrapes the HTTP plane while the demo traffic
runs — the same sequence the CI serve-smoke step performs with curl.
"""

import json
import os
import subprocess
import sys
import time
import urllib.request

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=10) as r:
        return r.status, r.read().decode()


@pytest.fixture(scope="module")
def demo():
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--demo", "--port", "0",
         "--for-seconds", "12", "--demo-requests", "64",
         "--max-batch", "16", "--max-wait-ms", "1.0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    try:
        line = proc.stdout.readline()
        assert line.startswith("repro.serve on http://"), line
        base = line.split()[2]
        yield proc, base.rstrip("/")
    finally:
        proc.terminate()
        proc.wait(timeout=30)


class TestDemoProcess:
    def test_startup_line_names_the_surface(self, demo):
        proc, base = demo
        assert "http://127.0.0.1:" in base

    def test_serve_stats_shows_live_coalescing(self, demo):
        _, base = demo
        # the demo loop needs a moment to push its first round through;
        # the cumulative ratio climbs above 1 as soon as any flush
        # batches, so wait for that evidence too — an early all-singles
        # round must not end the poll
        deadline = time.time() + 10.0
        stats = {}
        while time.time() < deadline:
            _, body = _get(base, "/serve/stats")
            stats = json.loads(body)
            if stats["coalesce"]["flushes"] > 0 and \
                    stats["coalesce"]["ratio"] > 1.0 and \
                    stats["requests"]["completed"] > 0:
                break
            time.sleep(0.25)
        assert stats["running"] is True
        assert stats["coalesce"]["flushes"] > 0
        assert stats["coalesce"]["ratio"] > 1.0    # it actually batched
        assert stats["requests"]["completed"] > 0
        assert stats["requests"]["by_routine"].keys() <= {"gemm", "trsm"}

    def test_healthz_and_metrics_alongside(self, demo):
        _, base = demo
        status, body = _get(base, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, metrics = _get(base, "/metrics")
        assert status == 200
        assert "repro_serve_submitted" in metrics

    def test_events_filter_surfaces_serve_stream(self, demo):
        _, base = demo
        deadline = time.time() + 10.0
        names = set()
        while time.time() < deadline:
            _, body = _get(base, "/events?prefix=serve.&n=200")
            names = {e["name"] for e in json.loads(body)}
            if names:
                break
            time.sleep(0.25)
        assert names                            # only serve.* and present
        assert all(n.startswith("serve.") for n in names)


def test_for_seconds_exits_cleanly():
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.serve", "--demo", "--port", "0",
         "--for-seconds", "2", "--demo-requests", "16", "--quiet"],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout == ""                    # --quiet means quiet
