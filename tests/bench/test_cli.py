"""Tests for the `python -m repro.bench` command line."""

import pytest

from repro.bench.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "table1" in out


@pytest.mark.parametrize("exp", ["table1", "table2", "fig4", "fig5"])
def test_local_experiments(capsys, exp):
    assert main([exp]) == 0
    assert capsys.readouterr().out.strip()


def test_fig7_single_dtype(capsys):
    assert main(["fig7", "--dtype", "d"]) == 0
    out = capsys.readouterr().out
    assert "dgemm" in out and "IATF" in out
    assert "sgemm" not in out


def test_fig9_single_dtype(capsys):
    assert main(["fig9", "--dtype", "s"]) == 0
    assert "strsm" in capsys.readouterr().out


def test_fig8_mode_filter(capsys):
    assert main(["fig8", "--dtype", "d", "--mode", "NT"]) == 0
    out = capsys.readouterr().out
    assert "NT" in out and "TT" not in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_fig11_cli(capsys):
    assert main(["fig11", "--dtype", "d"]) == 0
    out = capsys.readouterr().out
    assert "% of peak" in out and "MKL" in out


def test_fig12_cli(capsys):
    assert main(["fig12", "--dtype", "z"]) == 0
    assert "trsm" in capsys.readouterr().out


def test_fig10_mode_filter(capsys):
    assert main(["fig10", "--dtype", "d", "--mode", "LTUN"]) == 0
    out = capsys.readouterr().out
    assert "LTUN" in out and "LNUN" not in out


def test_ablation_cli(capsys):
    assert main(["ablation"]) == 0
    out = capsys.readouterr().out
    assert "scheduler" in out.lower() or "optimizer" in out.lower()


def test_backend_showdown_cli(capsys):
    assert main(["backend"]) == 0
    out = capsys.readouterr().out
    assert "interpret" in out and "compiled" in out
    assert "speedup" in out


def test_backend_flag_restricts_backends(capsys):
    assert main(["backend", "--backend", "compiled"]) == 0
    out = capsys.readouterr().out
    assert "compiled" in out and "interpret" not in out


def test_backends_showdown_covers_all_four(capsys):
    assert main(["backends", "--batch", "512"]) == 0
    out = capsys.readouterr().out
    for name in ("interpret", "compiled", "fused", "parallel"):
        assert name in out
    assert "pass pipeline" in out and "fused vs compiled" in out


def test_backends_json_artifact_appends(capsys, tmp_path):
    import json

    from repro.obs.watch import SCHEMA_VERSION, watch

    path = tmp_path / "traj.json"
    for expected_points in (1, 2):   # one v2 point per backend per run
        assert main(["backends", "--batch", "256",
                     "--backend", "fused", "--json", str(path)]) == 0
        points = json.loads(path.read_text())
        assert len(points) == expected_points
    point = points[-1]
    assert point["schema"] == SCHEMA_VERSION
    assert point["batch"] == 256
    assert point["backend"] == "fused"
    assert point["machine_id"] == "kunpeng-920"
    assert point["shape"] == [8, 8, 8]
    assert point["gflops"] > 0 and point["wall_seconds"] > 0
    assert "trajectory points (schema v2) appended" \
        in capsys.readouterr().out
    # the artifact it writes is exactly what the watchdog consumes
    assert watch([str(path)]).exit_code == 0
