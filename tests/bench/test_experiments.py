"""Experiment-function tests: every paper artifact regenerates and the
headline qualitative claims hold on a quick grid."""

import pytest

from repro.bench import experiments
from repro.bench.harness import BenchHarness
from repro.bench.reporting import markdown_table, ratio_summary, series_table


@pytest.fixture(scope="module")
def harness():
    return BenchHarness(sizes=(2, 4, 8, 16), batch=1024)


class TestTables:
    def test_table1_matches_paper(self):
        t = experiments.table1_kernels()
        assert t["real_opt"] == (4, 4)
        assert t["cplx_opt"] == (3, 2)
        assert "4" in t["render"]

    def test_table2_matches_paper(self):
        t = experiments.table2_machines()
        by_name = {r["name"]: r for r in t["rows"]}
        kp = by_name["Kunpeng 920"]
        assert kp["peak_fp64"] == pytest.approx(10.4)
        assert kp["peak_fp32"] == pytest.approx(41.6)
        assert kp["simd_bits"] == 128
        xe = by_name["Intel Xeon Gold 6240"]
        assert xe["peak_fp64"] == pytest.approx(83.2)
        assert xe["l1_kb"] == 32


class TestFigures:
    def test_fig4_compact_avoids_waste(self):
        r = experiments.fig4_tiling()
        assert r["compact"] == ([4, 4, 4, 3], [4, 4, 4, 3])
        assert r["wasted_lanes"] > 0        # traditional wastes, compact not

    def test_fig5_staging_monotone(self):
        r = experiments.fig5_scheduling()
        c = {k: v["cycles"] for k, v in r["results"].items()}
        assert c["original"] >= c["reordered"] >= c["optimized"]
        assert r["results"]["optimized"]["gflops"] > 0.85 * 10.4

    def test_fig7_structure(self, harness):
        r = experiments.fig7_gemm_nn(harness)
        assert set(r["series"]) == {"s", "d", "c", "z"}
        assert "Figure 7" in r["render"]["d"]

    def test_fig9_iatf_always_wins(self, harness):
        r = experiments.fig9_trsm_lnln(harness)
        for dt, series in r["series"].items():
            for (sz, v_i), (_, v_o) in zip(
                    series["IATF"].points,
                    series["OpenBLAS (loop)"].points):
                assert v_i > v_o, (dt, sz)

    def test_fig11_has_both_machines(self, harness):
        r = experiments.fig11_mkl_gemm(harness)
        assert "IATF (Kunpeng 920)" in r["series"]["d"]
        assert "MKL compact (Xeon 6240)" in r["series"]["d"]

    def test_fig12_smoke(self, harness):
        r = experiments.fig12_mkl_trsm(harness)
        assert "%" in r["render"]["s"]


class TestHeadlines:
    def test_headline_speedups_all_above_one(self, harness):
        r = experiments.headline_speedups(harness)
        for (routine, dt, lib), (best, at, paper) in r["measured"].items():
            assert best > 1.0, (routine, dt, lib)

    def test_paper_reference_values_present(self):
        assert experiments.PAPER_HEADLINES[("gemm", "s")][
            "OpenBLAS (loop)"] == 21
        assert experiments.PAPER_HEADLINES[("trsm", "s")][
            "OpenBLAS (loop)"] == 28


class TestAblations:
    def test_scheduling_always_helps(self):
        r = experiments.ablation_scheduling(sizes=(4, 8), batch=1024)
        for n, on, off, gain in r["rows"]:
            assert gain >= 1.0, n

    def test_nopack_always_helps(self):
        r = experiments.ablation_nopack(sizes=(1, 2, 4), batch=1024)
        for n, on, off, gain in r["rows"]:
            assert gain > 1.0, n


class TestReporting:
    def test_series_table_renders(self, harness):
        s = harness.gemm_series("d", "NN")
        text = series_table(s, "title")
        assert "title" in text and "IATF" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 4        # title + header + 4 sizes

    def test_ratio_summary(self, harness):
        s = harness.gemm_series("d", "NN")
        text = ratio_summary(s)
        assert "IATF vs OpenBLAS (loop)" in text and "x" in text

    def test_markdown_table(self):
        text = markdown_table(["a", "b"], [["1", "2"]])
        assert text.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in text


def test_ablation_batch_counter_never_hurts():
    r = experiments.ablation_batch_counter(sizes=(2, 4), batch=1024)
    for n, on, off, gain in r["rows"]:
        assert gain >= 0.99, n


def test_backend_showdown_structure():
    from repro.bench.experiments import backend_showdown
    res = backend_showdown(size=4, batch=64, repeats=1)
    assert set(res["seconds"]) == {"interpret", "compiled", "fused",
                                   "megakernel", "parallel"}
    assert all(sec > 0 for sec in res["seconds"].values())
    assert res["fused_vs_compiled"] > 0
    assert res["mega_vs_fused"] > 0
    assert res["passes"]["commands_after"] <= res["passes"][
        "commands_before"]
    assert "Backend showdown" in res["render"]
    assert "sgemm" in res["render"]
    assert "pass pipeline" in res["render"]
