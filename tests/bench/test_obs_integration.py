"""Benchmark harness + reporting integration with the obs subsystem."""

import json

from repro import obs
from repro.bench.harness import BenchHarness
from repro.bench.reporting import decision_stats
from repro.bench import experiments


def test_sweep_points_emit_spans_and_counters():
    h = BenchHarness(sizes=(2, 3), batch=64)
    with obs.scoped() as reg:
        h.gemm_gflops("IATF", 2, "d")
        h.gemm_gflops("IATF", 3, "d")
        h.gemm_gflops("IATF", 2, "d")        # cached: no new span
        counters = reg.counters()
        points = [s for s in reg.spans if s.name == "bench.point"]
    assert counters["bench.points"] == 2
    assert counters["bench.points.gemm"] == 2
    assert counters["bench.cache_hits"] == 1
    assert len(points) == 2
    assert {p.args["size"] for p in points} == {2, 3}


def test_harness_write_trace_artifact(tmp_path):
    h = BenchHarness(sizes=(2,), batch=64)
    with obs.scoped():
        h.gemm_gflops("IATF", 2, "d")
        path = h.write_trace(tmp_path / "sweep.trace.json")
    with open(path) as f:
        trace = json.load(f)
    obs.validate_chrome_trace(trace)
    names = {e["name"] for e in trace["traceEvents"]}
    assert "bench.point" in names


def test_decision_stats_renders_decision_counters():
    with obs.scoped() as reg:
        obs.count("plan_cache.hits", 5)
        obs.count("pack_selector.gemm.a.nopack", 2)
        obs.count("engine.timed_plans", 9)   # not a decision counter
        text = decision_stats(reg)
    assert "plan_cache.hits" in text
    assert "pack_selector.gemm.a.nopack" in text
    assert "engine.timed_plans" not in text
    assert text.startswith("decision statistics:")


def test_decision_stats_empty_when_nothing_recorded():
    assert decision_stats(obs.Registry()) == ""


def test_ablation_renders_include_decision_stats():
    result = experiments.ablation_nopack(sizes=(1, 2), batch=64)
    assert "decision statistics:" in result["render"]
    assert "pack_selector" in result["render"]

    result = experiments.ablation_autotune(sizes=(5,), batch=64)
    assert "decision statistics:" in result["render"]
    assert "autotune.candidates" in result["render"]
