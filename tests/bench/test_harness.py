"""Bench-harness tests (quick grids)."""

import pytest

from repro.bench.harness import (PAPER_BATCH, PAPER_SIZES, QUICK_SIZES,
                                 BenchHarness, Series)


@pytest.fixture(scope="module")
def harness():
    return BenchHarness(sizes=(2, 4, 8), batch=1024)


def test_paper_protocol_constants():
    assert PAPER_SIZES == tuple(range(1, 34))
    assert PAPER_BATCH == 16384
    assert set(QUICK_SIZES) <= set(PAPER_SIZES)


class TestSeries:
    def test_points_and_lookup(self):
        s = Series("x", "d", "gflops", [(2, 1.0), (4, 3.0)])
        assert s.sizes == [2, 4]
        assert s.value_at(4) == 3.0
        assert s.max_value == 3.0
        with pytest.raises(KeyError):
            s.value_at(8)


class TestSweeps:
    def test_gemm_series_structure(self, harness):
        out = harness.gemm_series("d", "NN")
        assert set(out) == {"IATF", "OpenBLAS (loop)", "ARMPL (batch)",
                            "LIBXSMM (batch)"}
        for s in out.values():
            assert s.sizes == [2, 4, 8]
            assert all(v > 0 for _, v in s.points)

    def test_complex_drops_libxsmm(self, harness):
        out = harness.gemm_series("z", "NN")
        assert "LIBXSMM (batch)" not in out

    def test_trsm_series_structure(self, harness):
        out = harness.trsm_series("d", "LNLN")
        assert set(out) == {"IATF", "OpenBLAS (loop)", "ARMPL (loop)"}

    def test_iatf_wins_small_gemm(self, harness):
        out = harness.gemm_series("d", "NN")
        assert out["IATF"].value_at(2) > out["OpenBLAS (loop)"].value_at(2)
        assert out["IATF"].value_at(2) > out["ARMPL (batch)"].value_at(2)

    def test_iatf_wins_all_trsm_sizes(self, harness):
        """The paper: 'IATF achieves extremely large improvements for all
        sizes and all data types' in TRSM."""
        out = harness.trsm_series("d", "LNLN")
        for (sz, iatf_v), (_, ob_v) in zip(out["IATF"].points,
                                           out["OpenBLAS (loop)"].points):
            assert iatf_v > ob_v, sz

    def test_caching(self, harness):
        v1 = harness.gemm_gflops("IATF", 4, "d", "NN")
        v2 = harness.gemm_gflops("IATF", 4, "d", "NN")
        assert v1 == v2
        assert ("gemm", "IATF", 4, "d", "NN", 1024) in harness._cache

    def test_unknown_lib_rejected(self, harness):
        with pytest.raises(KeyError):
            harness.gemm_gflops("ESSL", 4, "d", "NN")

    def test_max_speedup(self, harness):
        series = harness.gemm_series("d", "NN")
        ratio, size = harness.max_speedup(series, over="OpenBLAS (loop)")
        assert ratio > 1
        assert size in (2, 4, 8)


class TestPercentPeak:
    def test_gemm_percent_peak(self, harness):
        out = harness.gemm_percent_peak("d")
        assert set(out) == {"IATF (Kunpeng 920)",
                            "MKL compact (Xeon 6240)"}
        for s in out.values():
            for _, v in s.points:
                assert 0 < v < 100

    def test_trsm_percent_peak(self, harness):
        out = harness.trsm_percent_peak("s")
        for s in out.values():
            for _, v in s.points:
                assert 0 < v < 100


def test_series_csv(harness):
    from repro.bench.reporting import series_csv
    s = harness.gemm_series("d", "NN")
    text = series_csv(s)
    lines = text.splitlines()
    assert lines[0].startswith("size,IATF,")
    assert len(lines) == 1 + len(harness.sizes)
    assert all(len(l.split(",")) == len(s) + 1 for l in lines)
