"""TuningDB consultation from the run-time stage: hit, miss, fallback."""

import json

import pytest

from repro import IATF, KUNPENG_920, obs
from repro.runtime.engine import Engine
from repro.tuning import TuningDB, sweep
from repro.tuning.db import TuningKey, TuningRecord, TUNER_VERSION
from repro.types import GemmProblem, TrsmProblem


@pytest.fixture(scope="module")
def tuned_db(tmp_path_factory):
    """A small real sweep persisted to disk, as installation would."""
    path = tmp_path_factory.mktemp("tuning") / "kunpeng920.tuning.json"
    db = TuningDB(path=str(path))
    sweep(db, KUNPENG_920, ops=("gemm", "trsm"), dtypes=("d",),
          sizes=(3, 6, 9, 12), batch=512)
    db.save()
    return str(path)


class TestLookups:
    def test_hit_applies_record_and_counts(self, tuned_db):
        iatf = IATF(KUNPENG_920, tuning_db=tuned_db)
        with obs.scoped() as reg:
            plan = iatf.plan_gemm(GemmProblem(9, 9, 9, "d", batch=512))
        assert plan.meta["decision"]["source"] == "tuned"
        assert plan.meta["decision"]["tuner_version"] == TUNER_VERSION
        assert reg.snapshot()["counters"]["tuning.hit"] == 1

    def test_miss_falls_back_to_analytic(self, tuned_db):
        iatf = IATF(KUNPENG_920, tuning_db=tuned_db)
        with obs.scoped() as reg:
            plan = iatf.plan_gemm(GemmProblem(31, 31, 31, "d", batch=512))
        assert plan.meta["decision"]["source"] == "analytic"
        assert reg.snapshot()["counters"]["tuning.miss"] == 1

    def test_no_db_means_no_lookup_counters(self):
        iatf = IATF(KUNPENG_920)
        with obs.scoped() as reg:
            iatf.plan_gemm(GemmProblem(9, 9, 9, "d", batch=512))
        counters = reg.snapshot()["counters"]
        assert "tuning.hit" not in counters
        assert "tuning.miss" not in counters

    def test_trsm_hit(self, tuned_db):
        iatf = IATF(KUNPENG_920, tuning_db=tuned_db)
        plan = iatf.plan_trsm(TrsmProblem(6, 6, "d", batch=512))
        assert plan.meta["decision"]["source"] == "tuned"

    def test_force_pack_and_autotune_bypass_db(self, tuned_db):
        iatf = IATF(KUNPENG_920, tuning_db=tuned_db)
        with obs.scoped() as reg:
            forced = iatf.plan_gemm(GemmProblem(9, 9, 9, "d", batch=512),
                                    force_pack=True)
            tuned = iatf.plan_gemm(GemmProblem(9, 9, 9, "d", batch=512),
                                   autotune=True)
        assert "tuning.hit" not in reg.snapshot()["counters"]
        assert forced.meta["decision"]["source"] == "analytic"
        assert tuned.meta["decision"]["source"] == "runtime-autotune"


class TestNeverWorse:
    def test_tuned_plans_never_slower_on_cycle_model(self, tuned_db):
        """Acceptance criterion, measured through the public API: for
        every swept shape the tuned plan's simulated cycles are <= the
        analytic plan's."""
        tuned = IATF(KUNPENG_920, tuning_db=tuned_db)
        analytic = IATF(KUNPENG_920)
        engine = Engine(KUNPENG_920)
        for n in (3, 6, 9, 12):
            p = GemmProblem(n, n, n, "d", batch=512)
            t = engine.time_plan(tuned.plan_gemm(p)).total_cycles
            a = engine.time_plan(analytic.plan_gemm(p)).total_cycles
            assert t <= a


class TestFallback:
    def test_corrupt_db_counts_fallback_and_plans_analytically(self,
                                                               tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ definitely not json")
        iatf = IATF(KUNPENG_920, tuning_db=str(path))
        assert iatf.tuning_db.corrupt
        with obs.scoped() as reg:
            plan = iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=512))
        assert plan.meta["decision"]["source"] == "analytic"
        assert reg.snapshot()["counters"]["tuning.fallback"] == 1

    def test_infeasible_record_degrades_to_analytic(self, tmp_path):
        """A hand-edited record with a main the decomposer rejects must
        not propagate an exception out of plan_gemm."""
        db = TuningDB(path=str(tmp_path / "edited.json"))
        key = TuningKey.for_gemm(KUNPENG_920,
                                 GemmProblem(6, 6, 6, "d", batch=512))
        db.put(key, TuningRecord(main=(7, 7), force_pack=False,
                                 schedule=True, cycles=1.0, gflops=1.0,
                                 candidates=1, tuner_version=TUNER_VERSION,
                                 batch=512))
        db.save()
        iatf = IATF(KUNPENG_920, tuning_db=db.path)
        with obs.scoped() as reg:
            plan = iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=512))
        assert plan.meta["decision"]["source"] == "analytic"
        assert reg.snapshot()["counters"]["tuning.fallback"] == 1


class TestCacheCoherence:
    def test_cache_key_includes_record_signature(self, tmp_path):
        """Swapping the DB entry for a shape must produce a fresh plan,
        not serve the one cached under the old record."""
        p = GemmProblem(9, 9, 9, "d", batch=512)
        key = TuningKey.for_gemm(KUNPENG_920, p)

        db = TuningDB(path=str(tmp_path / "db.json"))
        db.put(key, TuningRecord(main=(3, 3), force_pack=False,
                                 schedule=True, cycles=1.0, gflops=1.0,
                                 candidates=1, tuner_version=TUNER_VERSION,
                                 batch=512))
        iatf = IATF(KUNPENG_920, tuning_db=db)
        first = iatf.plan_gemm(p)
        assert first.meta["main_kernel"] == (3, 3)

        db.put(key, TuningRecord(main=(4, 4), force_pack=False,
                                 schedule=True, cycles=1.0, gflops=1.0,
                                 candidates=1, tuner_version=TUNER_VERSION,
                                 batch=512))
        second = iatf.plan_gemm(p)
        assert second.meta["main_kernel"] == (4, 4)

    def test_tuned_and_untuned_plans_coexist(self, tuned_db):
        p = GemmProblem(9, 9, 9, "d", batch=512)
        tuned = IATF(KUNPENG_920, tuning_db=tuned_db).plan_gemm(p)
        plain = IATF(KUNPENG_920).plan_gemm(p)
        assert tuned.meta["decision"]["source"] == "tuned"
        assert plain.meta["decision"]["source"] == "analytic"


class TestExplainProvenance:
    def test_tuned_provenance_rendered(self, tuned_db):
        iatf = IATF(KUNPENG_920, tuning_db=tuned_db)
        text = iatf.explain_gemm(GemmProblem(9, 9, 9, "d",
                                             batch=512)).render()
        assert "decision provenance" in text
        assert "tuned @ db v3" in text
        assert "candidates swept" in text

    def test_analytic_provenance_rendered(self):
        iatf = IATF(KUNPENG_920)
        text = iatf.explain_gemm(GemmProblem(9, 9, 9, "d",
                                             batch=512)).render()
        assert "analytic CMAR" in text

    def test_runtime_autotune_provenance_rendered(self):
        iatf = IATF(KUNPENG_920)
        text = iatf.explain_gemm(GemmProblem(9, 9, 9, "d", batch=512),
                                 autotune=True).render()
        assert "run-time autotune" in text


class TestExecutionWithTunedPlans:
    def test_gemm_results_identical_with_and_without_db(self, tuned_db):
        """Tuning changes the schedule, never the mathematics."""
        import numpy as np

        rng = np.random.default_rng(7)
        a = rng.standard_normal((32, 9, 9))
        b = rng.standard_normal((32, 9, 9))
        c0 = np.zeros((32, 9, 9))
        tuned = IATF(KUNPENG_920, tuning_db=tuned_db)
        plain = IATF(KUNPENG_920)
        out_t = tuned.gemm(a, b, c0.copy(), beta=0.0)
        out_p = plain.gemm(a, b, c0.copy(), beta=0.0)
        np.testing.assert_allclose(out_t, out_p, rtol=1e-12)
        np.testing.assert_allclose(
            out_t, np.einsum("bij,bjk->bik", a, b), rtol=1e-10)
