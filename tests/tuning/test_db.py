"""TuningDB: versioned persistence that can never crash the runtime."""

import json
import os

import pytest

from repro.tuning.db import (SCHEMA_VERSION, TUNER_VERSION, TuningDB,
                             TuningKey, TuningRecord)
from repro.types import GemmProblem, TrsmProblem


def _record(main=(4, 4), force_pack=False, cycles=1000.0):
    return TuningRecord(main=main, force_pack=force_pack, schedule=True,
                        cycles=cycles, gflops=12.5, candidates=9,
                        tuner_version=TUNER_VERSION, batch=16384)


class TestKeys:
    def test_encode_decode_roundtrip(self):
        key = TuningKey("Kunpeng 920", "gemm", "d", 9, 9, 9, "NN")
        assert TuningKey.decode(key.encode()) == key

    def test_for_gemm_carries_mode(self):
        p = GemmProblem(4, 6, 8, "z", transa="T", batch=64)
        key = TuningKey.for_gemm("M", p)
        assert (key.op, key.dtype, key.mode) == ("gemm", "z", "TN")
        assert (key.m, key.n, key.k) == (4, 6, 8)

    def test_for_trsm_has_zero_k_and_full_mode(self):
        p = TrsmProblem(5, 7, "d", side="R", uplo="U", batch=64)
        key = TuningKey.for_trsm("M", p)
        assert key.k == 0
        assert key.op == "trsm"
        assert len(key.mode) == 4

    def test_batch_not_in_key(self):
        a = TuningKey.for_gemm("M", GemmProblem(4, 4, 4, "d", batch=64))
        b = TuningKey.for_gemm("M", GemmProblem(4, 4, 4, "d", batch=4096))
        assert a == b

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError):
            TuningKey.decode("not|enough|parts")


class TestRecords:
    def test_roundtrip(self):
        rec = _record()
        assert TuningRecord.from_dict(rec.to_dict()) == rec

    def test_none_main_roundtrip(self):
        rec = _record(main=None)
        assert TuningRecord.from_dict(rec.to_dict()).main is None

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("cycles"),
        lambda d: d.update(main=[1, 2, 3]),
        lambda d: d.update(candidates="many"),
    ])
    def test_invalid_dict_raises_valueerror(self, mutate):
        d = _record().to_dict()
        mutate(d)
        with pytest.raises(ValueError):
            TuningRecord.from_dict(d)


class TestPersistence:
    def test_save_load_bit_identical(self, tmp_path):
        db = TuningDB(path=str(tmp_path / "t.json"))
        key = TuningKey("M", "gemm", "d", 9, 9, 9, "NN")
        db.put(key, _record())
        db.save()
        again = TuningDB.load(db.path)
        assert not again.corrupt
        assert again.to_json() == db.to_json()
        assert again.get(key) == _record()

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        db = TuningDB(path=str(tmp_path / "t.json"))
        db.put(TuningKey("M", "gemm", "d", 4, 4, 4, "NN"), _record())
        db.save()
        db.save()                              # overwrite path too
        assert sorted(os.listdir(tmp_path)) == ["t.json"]

    def test_missing_file_loads_empty_healthy(self, tmp_path):
        db = TuningDB.load(tmp_path / "absent.json")
        assert not db.corrupt and len(db) == 0

    def test_save_without_path_raises(self):
        with pytest.raises((ValueError, TypeError)):
            TuningDB().save()


class TestCorruption:
    """Every flavor of bad file must flag corrupt and never raise."""

    @pytest.mark.parametrize("content", [
        "{ not json",
        "[]",
        json.dumps({"entries": {}}),                        # no schema
        json.dumps({"schema": SCHEMA_VERSION + 1, "entries": {}}),
        json.dumps({"schema": SCHEMA_VERSION, "entries": [1]}),
        json.dumps({"schema": SCHEMA_VERSION,
                    "entries": {"badkey": {}}}),
        json.dumps({"schema": SCHEMA_VERSION,
                    "entries": {"M|gemm|d|4|4|4|NN": {"cycles": 1}}}),
    ])
    def test_bad_content_flags_corrupt(self, tmp_path, content):
        path = tmp_path / "bad.json"
        path.write_text(content)
        db = TuningDB.load(path)
        assert db.corrupt
        assert db.corrupt_reason
        assert len(db) == 0

    def test_corrupt_counter_emitted(self, tmp_path):
        from repro import obs

        path = tmp_path / "bad.json"
        path.write_text("garbage")
        with obs.scoped() as reg:
            TuningDB.load(path)
        assert reg.snapshot()["counters"]["tuning.db.corrupt"] == 1


class TestStats:
    def test_stats_buckets(self):
        db = TuningDB()
        db.put(TuningKey("M", "gemm", "d", 4, 4, 4, "NN"), _record())
        db.put(TuningKey("M", "gemm", "d", 8, 8, 8, "NN"), _record())
        db.put(TuningKey("M", "trsm", "d", 4, 4, 0, "LNLN"),
               _record(main=None))
        s = db.stats()
        assert s["entries"] == 3
        assert s["per_machine_op"] == {"M/gemm": 2, "M/trsm": 1}

    def test_items_sorted(self):
        db = TuningDB()
        db.put(TuningKey("M", "gemm", "d", 9, 9, 9, "NN"), _record())
        db.put(TuningKey("M", "gemm", "d", 2, 2, 2, "NN"), _record())
        keys = [k.encode() for k, _ in db.items()]
        assert keys == sorted(keys)
