"""TuningDB: versioned persistence that can never crash the runtime."""

import json
import os

import pytest

from repro.tuning.db import (SCHEMA_VERSION, TUNER_VERSION, TuningDB,
                             TuningKey, TuningRecord)
from repro.types import GemmProblem, TrsmProblem


def _record(main=(4, 4), force_pack=False, cycles=1000.0):
    return TuningRecord(main=main, force_pack=force_pack, schedule=True,
                        cycles=cycles, gflops=12.5, candidates=9,
                        tuner_version=TUNER_VERSION, batch=16384)


class TestKeys:
    def test_encode_decode_roundtrip(self):
        key = TuningKey("Kunpeng 920", "gemm", "d", 9, 9, 9, "NN")
        assert TuningKey.decode(key.encode()) == key

    def test_for_gemm_carries_mode(self):
        p = GemmProblem(4, 6, 8, "z", transa="T", batch=64)
        key = TuningKey.for_gemm("M", p)
        assert (key.op, key.dtype, key.mode) == ("gemm", "z", "TN")
        assert (key.m, key.n, key.k) == (4, 6, 8)

    def test_for_trsm_has_zero_k_and_full_mode(self):
        p = TrsmProblem(5, 7, "d", side="R", uplo="U", batch=64)
        key = TuningKey.for_trsm("M", p)
        assert key.k == 0
        assert key.op == "trsm"
        assert len(key.mode) == 4

    def test_batch_not_in_key(self):
        a = TuningKey.for_gemm("M", GemmProblem(4, 4, 4, "d", batch=64))
        b = TuningKey.for_gemm("M", GemmProblem(4, 4, 4, "d", batch=4096))
        assert a == b

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError):
            TuningKey.decode("not|enough|parts")


class TestRecords:
    def test_roundtrip(self):
        rec = _record()
        assert TuningRecord.from_dict(rec.to_dict()) == rec

    def test_none_main_roundtrip(self):
        rec = _record(main=None)
        assert TuningRecord.from_dict(rec.to_dict()).main is None

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("cycles"),
        lambda d: d.update(main=[1, 2, 3]),
        lambda d: d.update(candidates="many"),
    ])
    def test_invalid_dict_raises_valueerror(self, mutate):
        d = _record().to_dict()
        mutate(d)
        with pytest.raises(ValueError):
            TuningRecord.from_dict(d)


class TestPersistence:
    def test_save_load_bit_identical(self, tmp_path):
        db = TuningDB(path=str(tmp_path / "t.json"))
        key = TuningKey("M", "gemm", "d", 9, 9, 9, "NN")
        db.put(key, _record())
        db.save()
        again = TuningDB.load(db.path)
        assert not again.corrupt
        assert again.to_json() == db.to_json()
        assert again.get(key) == _record()

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        db = TuningDB(path=str(tmp_path / "t.json"))
        db.put(TuningKey("M", "gemm", "d", 4, 4, 4, "NN"), _record())
        db.save()
        db.save()                              # overwrite path too
        assert sorted(os.listdir(tmp_path)) == ["t.json"]

    def test_missing_file_loads_empty_healthy(self, tmp_path):
        db = TuningDB.load(tmp_path / "absent.json")
        assert not db.corrupt and len(db) == 0

    def test_save_without_path_raises(self):
        with pytest.raises((ValueError, TypeError)):
            TuningDB().save()


class TestCorruption:
    """Every flavor of bad file must flag corrupt and never raise."""

    @pytest.mark.parametrize("content", [
        "{ not json",
        "[]",
        json.dumps({"entries": {}}),                        # no schema
        json.dumps({"schema": SCHEMA_VERSION + 1, "entries": {}}),
        json.dumps({"schema": SCHEMA_VERSION, "entries": [1]}),
        json.dumps({"schema": SCHEMA_VERSION,
                    "entries": {"badkey": {}}}),
        json.dumps({"schema": SCHEMA_VERSION,
                    "entries": {"M|gemm|d|4|4|4|NN": {"cycles": 1}}}),
    ])
    def test_bad_content_flags_corrupt(self, tmp_path, content):
        path = tmp_path / "bad.json"
        path.write_text(content)
        db = TuningDB.load(path)
        assert db.corrupt
        assert db.corrupt_reason
        assert len(db) == 0

    def test_corrupt_counter_emitted(self, tmp_path):
        from repro import obs

        path = tmp_path / "bad.json"
        path.write_text("garbage")
        with obs.scoped() as reg:
            TuningDB.load(path)
        assert reg.snapshot()["counters"]["tuning.db.corrupt"] == 1


class TestProvenance:
    def test_v3_fields_roundtrip(self):
        rec = TuningRecord(main=(3, 3), force_pack=True, schedule=True,
                           cycles=10.0, gflops=5.0, candidates=8,
                           tuner_version=TUNER_VERSION, batch=512,
                           machine_id="kunpeng-920", sweep="topk",
                           evaluator_version=1, timestamp=1234.0, space=36)
        again = TuningRecord.from_dict(rec.to_dict())
        assert again == rec
        assert again.sweep == "topk" and again.space == 36

    def test_pre_provenance_dict_gets_defaults(self):
        """A v3-schema file whose records predate the provenance columns
        (hand-migrated) still loads, with explicit 'unknown' defaults."""
        d = _record().to_dict()
        for k in ("machine_id", "sweep", "evaluator_version", "timestamp",
                  "space"):
            d.pop(k)
        rec = TuningRecord.from_dict(d)
        assert rec.machine_id == "" and rec.sweep == "full"
        assert rec.evaluator_version == 0 and rec.space == 0

    def test_keys_carry_tuning_id_not_name(self):
        from repro.machine.machines import KUNPENG_920

        key = TuningKey.for_gemm(KUNPENG_920,
                                 GemmProblem(4, 4, 4, "d", batch=64))
        assert key.machine == KUNPENG_920.tuning_id
        assert key.machine != KUNPENG_920.name

    def test_reconfigured_machine_keys_differently(self):
        """Same name, different issue rules -> different tuning_id, so
        records cannot leak between the two configurations."""
        from repro.machine.machines import KUNPENG_920

        twin = KUNPENG_920.with_rules(max_fp64=2)
        p = GemmProblem(4, 4, 4, "d", batch=64)
        assert twin.name == KUNPENG_920.name
        assert (TuningKey.for_gemm(twin, p)
                != TuningKey.for_gemm(KUNPENG_920, p))


class TestLegacyShim:
    def _legacy_doc(self, machine_name, schema=1, with_backend=False):
        rec = {"main": [4, 4], "force_pack": False, "schedule": True,
               "cycles": 1000.0, "gflops": 12.5, "candidates": 9,
               "tuner_version": 1, "batch": 16384, "repeats": 1}
        if with_backend:
            rec["backend"] = "fused"
        key = f"{machine_name}|gemm|d|4|4|4|NN"
        return {"schema": schema, "tuner_version": 1, "entries": {key: rec}}

    def test_v1_stock_name_upgrades_to_tuning_id(self, tmp_path):
        from repro.machine.machines import KUNPENG_920

        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self._legacy_doc("Kunpeng 920")))
        db = TuningDB.load(path)
        assert not db.corrupt
        key = TuningKey.for_gemm(KUNPENG_920,
                                 GemmProblem(4, 4, 4, "d", batch=64))
        rec = db.get(key)
        assert rec is not None
        assert rec.sweep == "legacy"
        assert rec.machine_id == "kunpeng-920"
        assert rec.backend == "compiled"       # pre-backend default

    def test_v2_roundtrips_through_v3(self, tmp_path):
        """v2 file -> load (shim) -> save (v3) -> load must preserve the
        decision and serialize stably."""
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(self._legacy_doc("Kunpeng 920",
                                                    schema=2,
                                                    with_backend=True)))
        db = TuningDB.load(path)
        assert not db.corrupt and db.loaded_schema == 2
        out = tmp_path / "v3.json"
        db.save(str(out))
        again = TuningDB.load(out)
        assert not again.corrupt and again.loaded_schema == SCHEMA_VERSION
        assert again.to_json() == db.to_json()
        (key, rec), = again.items()
        assert rec.main == (4, 4) and rec.backend == "fused"

    def test_unknown_machine_slug_stays_unreachable(self, tmp_path):
        """A legacy record from a machine we don't model keeps its slug:
        preserved for merge/export, but no stock config resolves to it."""
        from repro.machine import machines

        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self._legacy_doc("Some Other Box")))
        db = TuningDB.load(path)
        assert not db.corrupt and len(db) == 1
        (key, _), = db.items()
        assert key.machine == "some-other-box"
        stock = (machines.KUNPENG_920, machines.XEON_GOLD_6240,
                 machines.A64FX)
        assert key.machine not in {m.tuning_id for m in stock}

    def test_legacy_load_counted(self, tmp_path):
        from repro import obs

        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self._legacy_doc("Kunpeng 920")))
        with obs.scoped() as reg:
            TuningDB.load(path)
        assert reg.snapshot()["counters"]["tuning.db.legacy_loads"] == 1


def _fleet_key(n):
    return TuningKey("machine-a.00000000", "gemm", "d", n, n, n, "NN")


class TestMergeAndDiff:
    def test_merge_is_commutative_bit_identical(self):
        a, b = TuningDB(), TuningDB()
        a.put(_fleet_key(3), _record(cycles=100.0))
        a.put(_fleet_key(6), _record(cycles=200.0))
        b.put(_fleet_key(6), TuningRecord(
            main=(3, 3), force_pack=False, schedule=True, cycles=150.0,
            gflops=20.0, candidates=8, tuner_version=TUNER_VERSION,
            batch=512))
        b.put(_fleet_key(9), _record(cycles=300.0))
        ab = TuningDB.merge([a, b])
        ba = TuningDB.merge([b, a])
        assert ab.to_json() == ba.to_json()
        assert len(ab) == 3

    def test_conflict_keeps_higher_gflops(self):
        a, b = TuningDB(), TuningDB()
        lo = _record(cycles=100.0)               # gflops 12.5
        hi = TuningRecord(main=(3, 3), force_pack=False, schedule=True,
                          cycles=50.0, gflops=25.0, candidates=8,
                          tuner_version=TUNER_VERSION, batch=512)
        a.put(_fleet_key(4), lo)
        b.put(_fleet_key(4), hi)
        assert TuningDB.merge([a, b]).get(_fleet_key(4)) == hi
        assert TuningDB.merge([b, a]).get(_fleet_key(4)) == hi

    def test_gflops_tie_breaks_canonically(self):
        """Equal gflops: the winner is decided by canonical record JSON,
        identically in both argument orders."""
        a, b = TuningDB(), TuningDB()
        ra = _record(main=(4, 4))
        rb = _record(main=(3, 3))
        a.put(_fleet_key(4), ra)
        b.put(_fleet_key(4), rb)
        ab = TuningDB.merge([a, b]).get(_fleet_key(4))
        ba = TuningDB.merge([b, a]).get(_fleet_key(4))
        assert ab == ba
        assert ab in (ra, rb)

    def test_merge_associative(self):
        dbs = []
        for i, cyc in enumerate((100.0, 90.0, 80.0)):
            db = TuningDB()
            db.put(_fleet_key(4), _record(cycles=cyc + i))
            db.put(_fleet_key(4 + i), _record(cycles=cyc))
            dbs.append(db)
        one = TuningDB.merge(dbs)
        two = TuningDB.merge([TuningDB.merge(dbs[:2]), dbs[2]])
        assert one.to_json() == two.to_json()

    def test_self_diff_empty(self):
        db = TuningDB()
        db.put(_fleet_key(3), _record())
        db.put(_fleet_key(6), _record(cycles=123.0))
        d = TuningDB.diff(db, db)
        assert d["only_a"] == [] and d["only_b"] == []
        assert d["conflicts"] == [] and d["identical"] == 2

    def test_diff_reports_sides_and_conflicts(self):
        a, b = TuningDB(), TuningDB()
        a.put(_fleet_key(3), _record())
        a.put(_fleet_key(6), _record(cycles=100.0))
        b.put(_fleet_key(6), TuningRecord(
            main=(3, 3), force_pack=False, schedule=True, cycles=50.0,
            gflops=25.0, candidates=8, tuner_version=TUNER_VERSION,
            batch=512))
        b.put(_fleet_key(9), _record())
        d = TuningDB.diff(a, b)
        assert d["only_a"] == [_fleet_key(3).encode()]
        assert d["only_b"] == [_fleet_key(9).encode()]
        assert len(d["conflicts"]) == 1
        assert d["conflicts"][0]["winner"] == "b"   # higher gflops

    def test_merge_skips_corrupt_inputs(self, tmp_path):
        """A corrupt DB loads empty, so merging it contributes nothing
        (and the merge itself cannot raise)."""
        bad_path = tmp_path / "bad.json"
        bad_path.write_text("{ nope")
        bad = TuningDB.load(bad_path)
        good = TuningDB()
        good.put(_fleet_key(3), _record())
        merged = TuningDB.merge([good, bad])
        assert len(merged) == 1

    def test_reset_clears_corruption(self, tmp_path):
        bad_path = tmp_path / "bad.json"
        bad_path.write_text("{ nope")
        db = TuningDB.load(bad_path)
        assert db.corrupt
        db.reset()
        assert not db.corrupt and db.corrupt_reason == ""
        db.put(_fleet_key(3), _record())
        db.save()
        assert not TuningDB.load(bad_path).corrupt


class TestStats:
    def test_stats_buckets(self):
        db = TuningDB()
        db.put(TuningKey("M", "gemm", "d", 4, 4, 4, "NN"), _record())
        db.put(TuningKey("M", "gemm", "d", 8, 8, 8, "NN"), _record())
        db.put(TuningKey("M", "trsm", "d", 4, 4, 0, "LNLN"),
               _record(main=None))
        s = db.stats()
        assert s["entries"] == 3
        assert s["per_machine_op"] == {"M/gemm": 2, "M/trsm": 1}

    def test_items_sorted(self):
        db = TuningDB()
        db.put(TuningKey("M", "gemm", "d", 9, 9, 9, "NN"), _record())
        db.put(TuningKey("M", "gemm", "d", 2, 2, 2, "NN"), _record())
        keys = [k.encode() for k, _ in db.items()]
        assert keys == sorted(keys)
