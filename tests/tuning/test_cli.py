"""python -m repro.tuning: sweep, show, export, self-check."""

import json

import pytest

from repro.tuning.__main__ import main, _parse_sizes


class TestParseSizes:
    def test_range(self):
        assert _parse_sizes("1:4") == (1, 2, 3, 4)

    def test_list(self):
        assert _parse_sizes("4,8,12") == (4, 8, 12)

    @pytest.mark.parametrize("bad", ["0:4", "5:2", "", "0,3", "a:b"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            _parse_sizes(bad)


class TestSweepCommand:
    def test_sweep_creates_db_and_checks(self, tmp_path, capsys):
        db = tmp_path / "t.json"
        rc = main(["sweep", "--db", str(db), "--op", "gemm",
                   "--sizes", "3,6", "--batch", "256", "--check",
                   "--quiet"])
        out = capsys.readouterr().out
        assert rc == 0
        assert db.exists()
        assert "reproducibility check OK" in out
        doc = json.loads(db.read_text())
        assert doc["schema"] == 3
        assert len(doc["entries"]) == 2

    def test_sweep_prints_outcomes(self, tmp_path, capsys):
        rc = main(["sweep", "--db", str(tmp_path / "t.json"),
                   "--op", "gemm", "--sizes", "4", "--batch", "128"])
        assert rc == 0
        assert "gemm d 4x4x4" in capsys.readouterr().out

    def test_bad_sizes_is_usage_error(self, tmp_path, capsys):
        rc = main(["sweep", "--db", str(tmp_path / "t.json"),
                   "--sizes", "9:1"])
        assert rc == 2


class TestShowAndExport:
    @pytest.fixture()
    def db_path(self, tmp_path):
        path = tmp_path / "t.json"
        assert main(["sweep", "--db", str(path), "--op", "gemm",
                     "--sizes", "3,6", "--batch", "128", "--quiet"]) == 0
        return str(path)

    def test_show_lists_entries(self, db_path, capsys):
        assert main(["show", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "schema v3" in out
        from repro.machine.machines import KUNPENG_920
        assert f"{KUNPENG_920.tuning_id}/gemm: 2" in out
        assert "3x3x3" in out and "6x6x6" in out

    def test_show_corrupt_db_reports_and_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("nope")
        assert main(["show", "--db", str(bad)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_export_json_roundtrips(self, db_path, capsys):
        assert main(["export", "--db", db_path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["entries"]) == 2

    def test_export_csv_has_header_and_rows(self, db_path, capsys):
        assert main(["export", "--db", db_path, "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("machine,op,dtype,m,n,k,mode")
        assert len(lines) == 3


class TestSelfCheck:
    def test_self_check_passes(self, capsys):
        assert main(["self-check"]) == 0
        assert "tuning self-check OK" in capsys.readouterr().out

    def test_flag_spelling(self, capsys):
        assert main(["--self-check"]) == 0

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
