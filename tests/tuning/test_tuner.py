"""Tuner invariants: determinism and never-worse-than-analytic."""

import pytest

from repro.machine.machines import A64FX, KUNPENG_920
from repro.tuning import (TuningDB, Evaluator, sweep, tune_problem,
                          TUNER_VERSION)
from repro.tuning.db import TuningKey
from repro.types import GemmProblem, TrsmProblem


class TestTuneProblem:
    def test_never_worse_than_analytic(self):
        """Acceptance criterion: over the paper's size sweep, the tuned
        selection's simulated cycles never exceed the analytic CMAR
        choice's (ties keep analytic)."""
        for n in (1, 2, 3, 5, 8, 9, 12, 16):
            out = tune_problem(GemmProblem(n, n, n, "d", batch=512),
                               KUNPENG_920)
            assert out.record.cycles <= out.analytic_cycles

    def test_ties_keep_analytic(self):
        """Only a *strictly* cheaper candidate may replace the analytic
        head: when the tuner reports no improvement, the stored record
        must carry exactly the analytic candidate's decisions."""
        out = tune_problem(GemmProblem(4, 4, 4, "d", batch=512),
                           KUNPENG_920)
        assert out.record.cycles <= out.analytic_cycles
        if not out.improved:
            head = out.sweep[0]
            assert out.record.main == head["main"]
            assert out.record.force_pack == head["force_pack"]

    def test_deterministic(self):
        p = GemmProblem(9, 9, 9, "d", batch=512)
        a = tune_problem(p, KUNPENG_920)
        b = tune_problem(p, KUNPENG_920)
        assert a.record == b.record
        assert a.sweep == b.sweep

    def test_provenance_recorded(self):
        out = tune_problem(GemmProblem(6, 6, 6, "d", batch=512),
                           KUNPENG_920)
        rec = out.record
        assert rec.tuner_version == TUNER_VERSION
        assert rec.candidates == len(out.sweep) >= 1
        assert rec.batch == 512
        assert rec.cycles > 0 and rec.gflops > 0

    def test_trsm_tunes_pack_choice(self):
        out = tune_problem(TrsmProblem(4, 4, "d", batch=512), KUNPENG_920)
        assert out.record.main is None
        assert out.record.candidates == 2
        assert out.record.cycles <= out.analytic_cycles

    def test_repeats_do_not_change_cycle_model(self):
        p = GemmProblem(8, 8, 8, "d", batch=512)
        one = tune_problem(p, KUNPENG_920,
                           evaluator=Evaluator(KUNPENG_920, repeats=1))
        three = tune_problem(p, KUNPENG_920,
                             evaluator=Evaluator(KUNPENG_920, repeats=3))
        assert one.record.cycles == three.record.cycles

    def test_rejects_unknown_problem(self):
        with pytest.raises(TypeError):
            tune_problem(object(), KUNPENG_920)


class TestSweep:
    def test_populates_db_per_shape(self):
        db = TuningDB()
        outs = sweep(db, KUNPENG_920, ops=("gemm", "trsm"), dtypes=("d",),
                     sizes=(3, 6), batch=256)
        assert len(outs) == 4
        assert len(db) == 4
        key = TuningKey.for_gemm(KUNPENG_920,
                                 GemmProblem(3, 3, 3, "d", batch=256))
        assert db.get(key) is not None

    def test_sweep_keyed_by_machine(self):
        db = TuningDB()
        sweep(db, KUNPENG_920, ops=("gemm",), dtypes=("d",), sizes=(4,),
              batch=256)
        sweep(db, A64FX, ops=("gemm",), dtypes=("d",), sizes=(4,),
              batch=256)
        machines = {k.machine for k, _ in db.items()}
        assert machines == {KUNPENG_920.tuning_id, A64FX.tuning_id}

    def test_resweep_is_idempotent(self):
        db = TuningDB()
        sweep(db, KUNPENG_920, ops=("gemm",), dtypes=("d",), sizes=(3, 9),
              batch=256)
        first = db.to_json()
        sweep(db, KUNPENG_920, ops=("gemm",), dtypes=("d",), sizes=(3, 9),
              batch=256)
        assert db.to_json() == first

    def test_progress_callback_sees_every_outcome(self):
        seen = []
        db = TuningDB()
        sweep(db, KUNPENG_920, ops=("gemm",), dtypes=("d",), sizes=(2, 4),
              batch=256, progress=seen.append)
        assert len(seen) == 2
        assert all(o.describe() for o in seen)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            sweep(TuningDB(), KUNPENG_920, ops=("syrk",), sizes=(4,))

    def test_complex_dtype_sweeps(self):
        db = TuningDB()
        outs = sweep(db, KUNPENG_920, ops=("gemm",), dtypes=("z",),
                     sizes=(4, 6), batch=128)
        for o in outs:
            assert o.record.cycles <= o.analytic_cycles
