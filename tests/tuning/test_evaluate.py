"""Evaluator: cycle-model measurements, wall-clock provenance."""

import pytest

from repro.machine.machines import KUNPENG_920
from repro.runtime.engine import Engine
from repro.runtime.plan import build_gemm_plan
from repro.tuning.evaluate import Evaluator, Measurement
from repro.tuning.space import Candidate
from repro.types import GemmProblem, TrsmProblem


@pytest.fixture(scope="module")
def ev():
    return Evaluator(KUNPENG_920)


class TestCycleModel:
    def test_matches_engine_time_plan(self, ev):
        """The evaluator's metric is exactly the runtime's cycle model
        on exactly the runtime's plan — nothing bespoke in between."""
        p = GemmProblem(6, 6, 6, "d", batch=256)
        cand = Candidate(main=(3, 3))
        meas = ev.evaluate(p, cand)
        plan = build_gemm_plan(p, KUNPENG_920, ev.registry(True),
                               main_override=(3, 3))
        assert meas.cycles == Engine(KUNPENG_920).time_plan(plan).total_cycles

    def test_deterministic_across_repeats(self):
        p = GemmProblem(8, 8, 8, "d", batch=256)
        one = Evaluator(KUNPENG_920, repeats=1).evaluate(p, Candidate((4, 4)))
        five = Evaluator(KUNPENG_920, repeats=5).evaluate(p, Candidate((4, 4)))
        assert one.cycles == five.cycles
        assert five.repeats == 5

    def test_trsm_candidates(self, ev):
        p = TrsmProblem(4, 4, "d", batch=256)
        auto = ev.evaluate(p, Candidate(None))
        packed = ev.evaluate(p, Candidate(None, force_pack=True))
        assert auto.cycles > 0 and packed.cycles > 0

    def test_gflops_positive(self, ev):
        meas = ev.evaluate(GemmProblem(4, 4, 4, "d", batch=256),
                           Candidate((4, 4)))
        assert meas.gflops > 0

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            Evaluator(KUNPENG_920, repeats=0)

    def test_registry_cached_per_schedule(self, ev):
        assert ev.registry(True) is ev.registry(True)
        assert ev.registry(True) is not ev.registry(False)


class TestWallClock:
    def test_wall_clock_recorded_as_provenance(self):
        ev = Evaluator(KUNPENG_920, wall_clock=True)
        meas = ev.evaluate(GemmProblem(4, 4, 4, "d", batch=64),
                           Candidate((4, 4)))
        assert meas.wall_seconds is not None
        assert meas.wall_seconds > 0

    def test_wall_clock_off_by_default(self):
        meas = Evaluator(KUNPENG_920).evaluate(
            GemmProblem(4, 4, 4, "d", batch=64), Candidate((4, 4)))
        assert meas.wall_seconds is None

    def test_trsm_wall_clock(self):
        ev = Evaluator(KUNPENG_920, wall_clock=True)
        meas = ev.evaluate(TrsmProblem(4, 4, "d", batch=64),
                           Candidate(None))
        assert meas.wall_seconds > 0
