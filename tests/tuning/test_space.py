"""Candidate-space enumeration: analytic first, feasible always."""

import pytest

from repro.codegen.cmar import fits_registers, optimal_gemm_kernel
from repro.machine.machines import KUNPENG_920
from repro.tuning.space import (Candidate, enumerate_gemm_space,
                                enumerate_trsm_space, feasible_gemm_mains,
                                size_class)
from repro.types import GemmProblem, TrsmProblem


class TestFeasibleMains:
    @pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
    def test_all_feasible_and_decomposable(self, dtype):
        for mc, nc in feasible_gemm_mains(dtype):
            assert fits_registers(mc, nc, dtype)
            assert mc in (2, 3, 4) and nc in (2, 3, 4)

    @pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
    def test_head_is_analytic_optimum(self, dtype):
        """The first candidate must be the CMAR argmax whenever that
        argmax lies on the decomposable grid (it does for all four
        dtypes at 32 vregs)."""
        assert feasible_gemm_mains(dtype)[0] == optimal_gemm_kernel(dtype)

    def test_real_has_nine_complex_three(self):
        assert len(feasible_gemm_mains("d")) == 9
        assert len(feasible_gemm_mains("z")) == 3

    def test_reduced_register_file_shrinks_space(self):
        assert len(feasible_gemm_mains("d", 16)) < \
            len(feasible_gemm_mains("d", 32))


class TestSizeClass:
    @pytest.mark.parametrize("dims,klass", [
        ((2, 2, 2), "micro"), ((4, 4, 4), "micro"),
        ((5, 5, 5), "small"), ((12, 3, 3), "small"),
        ((13, 13, 13), "medium"), ((33, 1, 1), "medium"),
        ((34, 34, 34), "large"),
    ])
    def test_buckets(self, dims, klass):
        assert size_class(*dims) == klass


class TestGemmSpace:
    def test_first_candidate_is_analytic(self):
        p = GemmProblem(9, 9, 9, "d", batch=256)
        space = enumerate_gemm_space(p, KUNPENG_920)
        head = space[0]
        assert head.main == optimal_gemm_kernel("d")
        assert not head.force_pack
        assert head.schedule

    def test_pack_variant_only_where_nopack_possible(self):
        # 4x9x4: A fits one row tile non-transposed -> no-pack possible
        # for the (4, nc) mains, so those get a force_pack sibling
        p = GemmProblem(4, 9, 4, "d", batch=256)
        space = enumerate_gemm_space(p, KUNPENG_920)
        packed = [c for c in space if c.force_pack]
        assert packed                      # pruning kept some variants
        mains_with_pack = {c.main for c in packed}
        assert all(m[0] == 4 for m in mains_with_pack)

    def test_fully_packed_shapes_have_no_pack_variants(self):
        # 9x9: both dims need multiple tiles for every main except none;
        # actually 9 = 3x3 tiles... multiple tiles -> both operands pack
        p = GemmProblem(9, 9, 9, "d", transa="T", batch=256)
        space = enumerate_gemm_space(p, KUNPENG_920)
        assert all(not c.force_pack for c in space)

    def test_schedule_variants_double_space(self):
        p = GemmProblem(6, 6, 6, "d", batch=256)
        base = enumerate_gemm_space(p, KUNPENG_920)
        both = enumerate_gemm_space(p, KUNPENG_920, schedule_variants=True)
        assert len(both) == 2 * len(base)
        assert sum(1 for c in both if not c.schedule) == len(base)

    def test_labels_unique(self):
        p = GemmProblem(9, 9, 9, "d", batch=256)
        space = enumerate_gemm_space(p, KUNPENG_920,
                                     schedule_variants=True)
        labels = [c.label for c in space]
        assert len(labels) == len(set(labels))


class TestTrsmSpace:
    def test_pack_choice_is_the_space(self):
        p = TrsmProblem(4, 4, "d", batch=256)
        space = enumerate_trsm_space(p, KUNPENG_920)
        assert [c.force_pack for c in space] == [False, True]
        assert all(c.main is None for c in space)

    def test_schedule_variants(self):
        p = TrsmProblem(4, 4, "d", batch=256)
        space = enumerate_trsm_space(p, KUNPENG_920,
                                     schedule_variants=True)
        assert len(space) == 4


class TestCandidate:
    def test_label_formats(self):
        assert Candidate((3, 4)).label == "3x4/auto"
        assert Candidate((2, 2), force_pack=True).label == "2x2/pack"
        assert Candidate(None, schedule=False).label == "auto/unscheduled"
