"""Analytical-first sweep tests: scoring, ranking, and the rank-quality
invariant (the full-sweep winner must survive the top-k cut)."""

import pytest

from repro.machine.machines import A64FX, KUNPENG_920, XEON_GOLD_6240
from repro.tuning.space import (AnalyticScore, enumerate_gemm_space,
                                full_space, rank_candidates,
                                score_candidate)
from repro.tuning.tuner import DEFAULT_TOP_K, tune_problem
from repro.types import GemmProblem, TrsmProblem

MACHINES = [KUNPENG_920, XEON_GOLD_6240, A64FX]


class TestScorer:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.machine_id)
    @pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
    def test_scores_positive_and_bounded(self, machine, dtype):
        p = GemmProblem(8, 8, 8, dtype, batch=512)
        for cand in full_space(p, machine):
            s = score_candidate(p, machine, cand)
            assert isinstance(s, AnalyticScore)
            assert s.score > 0
            assert 0 < s.occupancy <= 1.0
            assert 0 < s.residency <= 1.0
            assert s.est_flops_per_cycle > 0

    def test_trsm_scoring(self):
        p = TrsmProblem(8, 8, "d", batch=512)
        for cand in full_space(p, KUNPENG_920):
            assert score_candidate(p, KUNPENG_920, cand).score > 0

    def test_describe_smoke(self):
        p = GemmProblem(4, 4, 4, "d", batch=64)
        cand = full_space(p, KUNPENG_920)[0]
        d = score_candidate(p, KUNPENG_920, cand).describe()
        assert {"score", "occupancy", "balance", "residency"} <= set(d)


class TestRanking:
    def test_rank_covers_and_sorts(self):
        p = GemmProblem(9, 9, 9, "d", batch=512)
        cands = full_space(p, KUNPENG_920)
        ranked = rank_candidates(p, KUNPENG_920, cands)
        assert len(ranked) == len(cands)
        assert {c for c, _ in ranked} == set(cands)
        scores = [s.score for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_rank_default_is_full_space(self):
        p = GemmProblem(6, 6, 6, "d", batch=512)
        assert (len(rank_candidates(p, KUNPENG_920))
                == len(full_space(p, KUNPENG_920)))

    def test_rank_is_deterministic(self):
        p = GemmProblem(8, 8, 8, "s", batch=512)
        a = [c.label for c, _ in rank_candidates(p, KUNPENG_920)]
        b = [c.label for c, _ in rank_candidates(p, KUNPENG_920)]
        assert a == b


class TestTopKSweep:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.machine_id)
    @pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
    @pytest.mark.parametrize("n", [3, 5, 8, 12])
    def test_topk_selects_full_sweep_winner(self, machine, dtype, n):
        """The rank-quality invariant: on the modeled machines the
        analytical ranking never evicts the true (full-sweep) winner
        from the default top-k cut."""
        p = GemmProblem(n, n, n, dtype, batch=512)
        full = tune_problem(p, machine, schedule_variants=True, top_k=None)
        cut = tune_problem(p, machine, schedule_variants=True)
        assert cut.record.main == full.record.main
        assert cut.record.force_pack == full.record.force_pack
        assert cut.record.schedule == full.record.schedule
        assert cut.record.cycles == full.record.cycles

    @pytest.mark.parametrize("n", [3, 5], ids=["trsm3", "trsm5"])
    def test_topk_trsm_winner_matches(self, n):
        p = TrsmProblem(n, n, "d", batch=512)
        full = tune_problem(p, KUNPENG_920, schedule_variants=True,
                            top_k=None)
        cut = tune_problem(p, KUNPENG_920, schedule_variants=True)
        assert cut.record.cycles == full.record.cycles
        assert cut.record.main == full.record.main

    @pytest.mark.parametrize("dtype", ["s", "d"])
    def test_coverage_quarter_of_space(self, dtype):
        """Acceptance: on the Kunpeng 920 the default sweep measures at
        most 25% of the register-feasible space for the wide real-dtype
        spaces."""
        p = GemmProblem(9, 9, 9, dtype, batch=512)
        out = tune_problem(p, KUNPENG_920, schedule_variants=True)
        assert out.record.sweep == "topk"
        assert out.record.space == len(full_space(p, KUNPENG_920))
        assert out.record.candidates <= 0.25 * out.record.space

    def test_small_space_stays_full(self):
        """When the enumeration is already <= top_k there is no cut and
        the record says so."""
        p = GemmProblem(4, 4, 4, "z", batch=64)
        out = tune_problem(p, KUNPENG_920)
        assert out.record.sweep == "full"
        assert out.record.candidates <= DEFAULT_TOP_K

    def test_analytic_head_always_measured(self):
        """top_k=1 degenerates to the analytic candidate alone."""
        p = GemmProblem(9, 9, 9, "d", batch=512)
        analytic = enumerate_gemm_space(p, KUNPENG_920,
                                        schedule_variants=True)[0]
        out = tune_problem(p, KUNPENG_920, schedule_variants=True, top_k=1)
        assert out.record.candidates == 1
        assert out.record.main == analytic.main
        assert not out.improved

    def test_provenance_stamped(self):
        p = GemmProblem(9, 9, 9, "d", batch=512)
        out = tune_problem(p, KUNPENG_920, schedule_variants=True,
                           timestamp=42.0)
        rec = out.record
        assert rec.machine_id == KUNPENG_920.machine_id
        assert rec.timestamp == 42.0
        assert rec.evaluator_version >= 1

    def test_sweep_label_override(self):
        p = GemmProblem(6, 6, 6, "d", batch=512)
        out = tune_problem(p, KUNPENG_920, sweep_label="retune")
        assert out.record.sweep == "retune"
