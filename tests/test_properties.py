"""End-to-end property-based tests: the whole IATF pipeline against the
reference oracle on randomly drawn problems.

These are the highest-value invariants in the suite: any random problem
shape, dtype, mode, and scaling factor the framework accepts must solve
to the same answer as NumPy/SciPy.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IATF, KUNPENG_920
from repro.reference import gemm_reference, trsm_reference
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import (NP_DTYPES, random_batch, random_triangular,
                            tolerance)

IATF_SHARED = IATF(KUNPENG_920)

small = st.integers(1, 12)
scalars = st.sampled_from([0.0, 1.0, -1.0, 2.5, 0.5])


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(m=small, n=small, k=small,
       dtype=st.sampled_from(["s", "d"]),
       transa=st.booleans(), transb=st.booleans(),
       batch=st.integers(1, 9),
       alpha=scalars, beta=scalars,
       seed=st.integers(0, 2**16))
def test_gemm_matches_reference(m, n, k, dtype, transa, transb, batch,
                                alpha, beta, seed):
    rng = np.random.default_rng(seed)
    p = GemmProblem(m, n, k, dtype, transa, transb, batch, alpha, beta)
    a = random_batch(rng, batch, *p.a_shape, dtype)
    b = random_batch(rng, batch, *p.b_shape, dtype)
    c = random_batch(rng, batch, m, n, dtype)
    got = IATF_SHARED.gemm(a, b, c.copy(), alpha, beta,
                           "T" if transa else "N", "T" if transb else "N")
    want = gemm_reference(p, a, b, c)
    scale = max(1.0, np.abs(want).max())
    assert np.abs(got - want).max() < tolerance(dtype) * scale


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(m=small, n=small,
       dtype=st.sampled_from(["d", "z"]),
       side=st.sampled_from(["L", "R"]),
       uplo=st.sampled_from(["L", "U"]),
       trans=st.sampled_from(["N", "T"]),
       diag=st.sampled_from(["N", "U"]),
       batch=st.integers(1, 6),
       seed=st.integers(0, 2**16))
def test_trsm_matches_reference(m, n, dtype, side, uplo, trans, diag,
                                batch, seed):
    rng = np.random.default_rng(seed)
    p = TrsmProblem(m, n, dtype, side, uplo, trans, diag, batch, alpha=1.5)
    a = random_triangular(rng, batch, p.a_dim, dtype, uplo)
    b = random_batch(rng, batch, m, n, dtype)
    got = IATF_SHARED.trsm(a, b.copy(), 1.5, side, uplo, trans, diag)
    want = trsm_reference(p, a, b)
    scale = max(1.0, np.abs(want).max())
    assert np.abs(got - want).max() < 10 * tolerance(dtype) * scale


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(m=small, n=small,
       uplo=st.sampled_from(["L", "U"]),
       batch=st.integers(1, 5),
       seed=st.integers(0, 2**16))
def test_trsm_residual_property(m, n, uplo, batch, seed):
    """Independent of the oracle: op(A) @ X must reproduce alpha*B."""
    rng = np.random.default_rng(seed)
    a = random_triangular(rng, batch, m, "d", uplo)
    b = random_batch(rng, batch, m, n, "d")
    x = IATF_SHARED.trsm(a, b.copy(), 1.0, "L", uplo, "N", "N")
    tri = np.tril(a) if uplo == "L" else np.triu(a)
    resid = tri @ x - b
    assert np.abs(resid).max() < 1e-7 * max(1.0, np.abs(b).max())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(m=small, n=small, k=small, batch=st.integers(1, 6),
       seed=st.integers(0, 2**16))
def test_gemm_linearity_property(m, n, k, batch, seed):
    """gemm(alpha=2) == 2 * gemm(alpha=1) when beta == 0."""
    rng = np.random.default_rng(seed)
    a = random_batch(rng, batch, m, k, "d")
    b = random_batch(rng, batch, k, n, "d")
    z = np.zeros((batch, m, n))
    one = IATF_SHARED.gemm(a, b, z.copy(), alpha=1.0, beta=0.0)
    two = IATF_SHARED.gemm(a, b, z.copy(), alpha=2.0, beta=0.0)
    assert np.allclose(two, 2 * one, atol=1e-9)
