"""Documentation freshness: paths and symbols named in the docs exist.

Docs rot silently; these tests fail loudly when a module, function, or
file referenced from README/DESIGN/docs is renamed away.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = [ROOT / "README.md", ROOT / "DESIGN.md",
        *sorted((ROOT / "docs").glob("*.md"))]


def test_required_deliverable_files_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "pyproject.toml"):
        assert (ROOT / name).exists(), name
    for name in ("quickstart.py", "cfd_flux_kernels.py",
                 "block_jacobi_preconditioner.py", "autotuning_tour.py",
                 "simulator_tour.py", "backend_showdown.py"):
        assert (ROOT / "examples" / name).exists(), name


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_referenced_modules_exist(doc):
    """Every `repro.x.y` / `repro/x/y.py` mention resolves to a file."""
    text = doc.read_text()
    src = ROOT / "src"
    missing = []
    for mod in set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text)):
        parts = mod.split(".")
        path = src.joinpath(*parts)
        if not (path.with_suffix(".py").exists()
                or (path / "__init__.py").exists()):
            missing.append(mod)
    for rel in set(re.findall(r"`((?:src/)?repro/[a-z_/]+\.py)`", text)):
        p = ROOT / (rel if rel.startswith("src/") else f"src/{rel}")
        if not p.exists():
            missing.append(rel)
    assert not missing, f"{doc.name} references missing modules: {missing}"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_referenced_test_and_bench_files_exist(doc):
    text = doc.read_text()
    missing = []
    for rel in set(re.findall(r"`((?:tests|benchmarks)/[a-z0-9_/]+\.py)`",
                              text)):
        if not (ROOT / rel).exists():
            missing.append(rel)
    assert not missing, f"{doc.name} references missing files: {missing}"


def test_design_mentions_every_subpackage():
    """DESIGN.md's inventory must cover each src/repro subpackage."""
    design = (ROOT / "DESIGN.md").read_text()
    for sub in sorted((ROOT / "src" / "repro").iterdir()):
        if sub.is_dir() and (sub / "__init__.py").exists():
            assert sub.name in design, f"DESIGN.md misses {sub.name}/"
