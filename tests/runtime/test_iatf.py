"""Public-API tests for the IATF facade."""

import numpy as np
import pytest

from repro import IATF, KUNPENG_920, XEON_GOLD_6240
from repro.errors import InvalidProblemError
from repro.reference import gemm_reference, trsm_reference
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import (ALL_DTYPES, random_batch, random_triangular,
                            tolerance)


@pytest.fixture(scope="module")
def iatf():
    return IATF(KUNPENG_920)


class TestGemmApi:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_standard_arrays(self, iatf, rng, dtype):
        a = random_batch(rng, 10, 6, 4, dtype)
        b = random_batch(rng, 10, 4, 7, dtype)
        c = random_batch(rng, 10, 6, 7, dtype)
        got = iatf.gemm(a, b, c.copy(), alpha=2.0, beta=1.0)
        p = GemmProblem(6, 7, 4, dtype, batch=10, alpha=2.0, beta=1.0)
        want = gemm_reference(p, a, b, c)
        assert np.abs(got - want).max() < tolerance(dtype)

    def test_transpose_flags(self, iatf, rng):
        a = random_batch(rng, 6, 4, 6, "d")    # stored (k=4? no: (4,6))
        b = random_batch(rng, 6, 7, 4, "d")
        c = np.zeros((6, 6, 7))
        got = iatf.gemm(a, b, c, transa="T", transb="T", beta=0.0)
        want = a.transpose(0, 2, 1) @ b.transpose(0, 2, 1)
        assert np.abs(got - want).max() < 1e-9

    def test_rejects_2d(self, iatf):
        with pytest.raises(InvalidProblemError):
            iatf.gemm(np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((4, 4)))

    def test_rejects_mismatched_batches(self, iatf):
        with pytest.raises(InvalidProblemError):
            iatf.gemm(np.zeros((2, 4, 4)), np.zeros((3, 4, 4)),
                      np.zeros((2, 4, 4)))

    def test_plan_cache_hit(self, iatf):
        p = GemmProblem(3, 3, 3, "d", batch=7)
        assert iatf.plan_gemm(p) is iatf.plan_gemm(p)
        assert iatf.plan_gemm(p) is not iatf.plan_gemm(p.with_batch(8))


class TestTrsmApi:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_standard_arrays(self, iatf, rng, dtype):
        a = random_triangular(rng, 6, 5, dtype)
        b = random_batch(rng, 6, 5, 4, dtype)
        got = iatf.trsm(a, b.copy(), alpha=1.5)
        p = TrsmProblem(5, 4, dtype, batch=6, alpha=1.5)
        want = trsm_reference(p, a, b)
        assert np.abs(got - want).max() < 10 * tolerance(dtype)

    def test_solution_solves_system(self, iatf, rng):
        """Residual check: A @ X == alpha * B."""
        a = random_triangular(rng, 4, 9, "d")
        b = random_batch(rng, 4, 9, 6, "d")
        x = iatf.trsm(a, b.copy())
        resid = np.tril(a) @ x - b
        assert np.abs(resid).max() < 1e-8

    def test_rejects_mismatched_batches(self, iatf):
        with pytest.raises(InvalidProblemError):
            iatf.trsm(np.zeros((2, 4, 4)), np.zeros((3, 4, 4)))


class TestInstall:
    def test_install_populates_registry(self):
        fresh = IATF(KUNPENG_920)
        n = fresh.install(dtypes=("d",))
        assert n > 20
        assert len(fresh.registry) == n


class TestCrossMachine:
    def test_runs_on_xeon_model(self, rng):
        xeon = IATF(XEON_GOLD_6240)
        a = random_batch(rng, 20, 5, 5, "d")
        b = random_batch(rng, 20, 5, 5, "d")
        c = np.zeros((20, 5, 5))
        got = xeon.gemm(a, b, c, beta=0.0)
        assert np.abs(got - a @ b).max() < 1e-9

    def test_xeon_higher_peak_gemm(self):
        k = IATF(KUNPENG_920).time_gemm(GemmProblem(8, 8, 8, "d",
                                                    batch=2048))
        x = IATF(XEON_GOLD_6240).time_gemm(GemmProblem(8, 8, 8, "d",
                                                       batch=2048))
        assert x.gflops > k.gflops      # absolute perf; % peak may differ


class TestAutotune:
    def test_never_slower_than_analytic(self, iatf):
        from repro.types import GemmProblem
        for n in (5, 9, 13):
            p = GemmProblem(n, n, n, "d", batch=2048)
            t0 = iatf.time_gemm(p).total_cycles
            t1 = iatf.time_gemm(p, autotune=True).total_cycles
            assert t1 <= t0 + 1e-9, n

    def test_autotuned_plan_cached_and_marked(self, iatf):
        from repro.types import GemmProblem
        p = GemmProblem(9, 9, 9, "d", batch=512)
        plan = iatf.plan_gemm(p, autotune=True)
        assert plan.meta.get("autotuned")
        assert iatf.plan_gemm(p, autotune=True) is plan
        # the non-autotuned plan is a separate cache entry
        assert iatf.plan_gemm(p) is not plan

    def test_autotuned_plan_executes_correctly(self, iatf, rng):
        import numpy as np
        from repro.layout import CompactBatch
        from repro.types import GemmProblem
        from tests.conftest import random_batch
        p = GemmProblem(9, 9, 9, "d", batch=6)
        a = random_batch(rng, 6, 9, 9, "d")
        b = random_batch(rng, 6, 9, 9, "d")
        cc = CompactBatch.from_matrices(np.zeros((6, 9, 9)), 2)
        plan = iatf.plan_gemm(p.with_batch(6), autotune=True)
        iatf.engine.execute_gemm(plan,
                                 CompactBatch.from_matrices(a, 2),
                                 CompactBatch.from_matrices(b, 2), cc)
        assert np.abs(cc.to_matrices() - a @ b).max() < 1e-9


class TestOperandShapeValidation:
    """Every operand is checked against the shape the problem derives
    before any planning or packing happens."""

    def test_wrong_b_under_transb(self, rng):
        iatf = IATF(KUNPENG_920)
        a = random_batch(rng, 4, 5, 6, "d")       # m=5, k=6
        b = random_batch(rng, 4, 6, 7, "d")       # stored (k, n): wrong for T
        c = random_batch(rng, 4, 5, 7, "d")
        with pytest.raises(InvalidProblemError,
                           match=r"B is 6x7 .*transb=T.* 7x6"):
            iatf.gemm(a, b, c, transb="T")

    def test_wrong_a_rows(self, rng):
        iatf = IATF(KUNPENG_920)
        a = random_batch(rng, 4, 3, 6, "d")       # 3 rows, C wants m=5
        b = random_batch(rng, 4, 6, 7, "d")
        c = random_batch(rng, 4, 5, 7, "d")
        with pytest.raises(InvalidProblemError, match=r"A is 3x6"):
            iatf.gemm(a, b, c)

    def test_valid_transposed_b_accepted(self, rng):
        iatf = IATF(KUNPENG_920)
        a = random_batch(rng, 4, 5, 6, "d")
        b = random_batch(rng, 4, 7, 6, "d")       # stored (n, k) for T
        c = np.zeros((4, 5, 7))
        got = iatf.gemm(a, b, c, beta=0.0, transb="T")
        want = a @ b.transpose(0, 2, 1)
        assert np.abs(got - want).max() < 1e-9

    def test_trsm_nonsquare_a(self, rng):
        iatf = IATF(KUNPENG_920)
        a = random_batch(rng, 4, 4, 5, "d")
        b = random_batch(rng, 4, 4, 3, "d")
        with pytest.raises(InvalidProblemError, match=r"A is 4x5"):
            iatf.trsm(a, b)

    def test_trsm_wrong_side_dimension(self, rng):
        iatf = IATF(KUNPENG_920)
        a = random_triangular(rng, 4, 4, "d")     # 4x4, but side=R wants n=3
        b = random_batch(rng, 4, 4, 3, "d")
        with pytest.raises(InvalidProblemError, match=r"side=R.* 3x3"):
            iatf.trsm(a, b, side="R")
