"""Bounded LRU plan cache: eviction order, stats, and obs counters."""

from repro import IATF, KUNPENG_920, obs
from repro.runtime.iatf import PlanCache
from repro.types import GemmProblem

import pytest


class TestPlanCacheUnit:
    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.put(("a",), "A")
        cache.put(("b",), "B")
        assert cache.get(("a",)) == "A"     # refresh a
        cache.put(("c",), "C")              # evicts b, the LRU entry
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        assert cache.get(("c",)) == "C"
        assert cache.evictions == 1

    def test_stats_track_hits_and_misses(self):
        cache = PlanCache(maxsize=4)
        cache.get(("x",))
        cache.put(("x",), 1)
        cache.get(("x",))
        s = cache.stats()
        assert s == {"size": 1, "maxsize": 4, "hits": 1, "misses": 1,
                     "hit_rate": 0.5, "evictions": 0, "invalidations": 0}

    def test_hit_rate_zero_before_any_lookup(self):
        cache = PlanCache(maxsize=4)
        assert cache.hit_rate == 0.0
        assert cache.stats()["hit_rate"] == 0.0

    def test_hit_rate_converges_under_reuse(self):
        cache = PlanCache(maxsize=4)
        cache.get(("x",))                       # miss
        cache.put(("x",), 1)
        for _ in range(9):
            cache.get(("x",))                   # 9 hits
        assert cache.hit_rate == pytest.approx(0.9)

    def test_hit_rate_mirrored_into_obs_gauge(self):
        with obs.scoped() as reg:
            cache = PlanCache(maxsize=4)
            cache.get(("x",))
            cache.put(("x",), 1)
            cache.get(("x",))
            snap = reg.snapshot()
        assert snap["counters"]["plan_cache.hit_rate"] == \
            pytest.approx(0.5)
        assert "plan_cache.hit_rate" in snap.get("gauge_names", ())

    def test_rejects_degenerate_size(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestIatfIntegration:
    def test_default_cache_is_generous(self):
        assert IATF(KUNPENG_920)._plan_cache.maxsize == 1024

    def test_eviction_bound_respected(self):
        iatf = IATF(KUNPENG_920, plan_cache_size=3)
        plans = [iatf.plan_gemm(GemmProblem(2, 2, 2, "d", batch=b))
                 for b in range(1, 6)]
        assert len(iatf._plan_cache) == 3
        assert iatf.plan_cache_stats["evictions"] == 2
        # evicted plan is rebuilt, not resurrected
        again = iatf.plan_gemm(GemmProblem(2, 2, 2, "d", batch=1))
        assert again is not plans[0]

    def test_hit_returns_same_object(self):
        iatf = IATF(KUNPENG_920)
        p = GemmProblem(3, 3, 3, "d", batch=7)
        assert iatf.plan_gemm(p) is iatf.plan_gemm(p)
        assert iatf.plan_cache_stats["hits"] >= 1

    def test_counters_mirror_into_obs_registry(self):
        iatf = IATF(KUNPENG_920)
        p = GemmProblem(3, 3, 3, "d", batch=9)
        with obs.scoped() as reg:
            iatf.plan_gemm(p)
            iatf.plan_gemm(p)
            counters = reg.counters()
        assert counters["plan_cache.misses"] == 1
        assert counters["plan_cache.hits"] == 1
        assert counters["plan_cache.size"] == 1

    def test_autotune_meta_complete_before_insert(self):
        """The cached plan must never be mutated after insertion: the
        object coming out of the cache already carries its autotune
        metadata."""
        iatf = IATF(KUNPENG_920)
        p = GemmProblem(9, 9, 9, "d", batch=64)
        plan = iatf.plan_gemm(p, autotune=True)
        assert plan.meta["autotuned"] is True
        assert len(plan.meta["autotune_sweep"]) == \
            len(IATF.GEMM_TUNE_CANDIDATES_REAL)
        cached = iatf.plan_gemm(p, autotune=True)
        assert cached is plan
        assert cached.meta["autotune_sweep"] is plan.meta["autotune_sweep"]

    def test_trsm_plans_share_the_cache(self):
        from repro.types import TrsmProblem
        iatf = IATF(KUNPENG_920, plan_cache_size=8)
        tp = TrsmProblem(4, 4, "d", batch=32)
        gp = GemmProblem(4, 4, 4, "d", batch=32)
        iatf.plan_trsm(tp)
        iatf.plan_gemm(gp)
        assert len(iatf._plan_cache) == 2
        assert iatf.plan_trsm(tp) is iatf.plan_trsm(tp)


class TestCompiledSideSlot:
    def test_compiled_rides_with_the_plan(self):
        cache = PlanCache(maxsize=2)
        cache.put(("a",), "plan-a")
        assert cache.get_compiled(("a",)) is None
        cache.put_compiled(("a",), "compiled-a")
        assert cache.get_compiled(("a",)) == "compiled-a"

    def test_put_resets_compiled(self):
        cache = PlanCache(maxsize=2)
        cache.put(("a",), "plan-a")
        cache.put_compiled(("a",), "compiled-a")
        cache.put(("a",), "plan-a2")       # fresh plan -> stale lowering
        assert cache.get_compiled(("a",)) is None

    def test_eviction_drops_compiled(self):
        cache = PlanCache(maxsize=1)
        cache.put(("a",), "plan-a")
        cache.put_compiled(("a",), "compiled-a")
        cache.put(("b",), "plan-b")        # evicts a and its lowering
        assert cache.get_compiled(("a",)) is None
        # attaching to a missing key is a harmless no-op
        cache.put_compiled(("a",), "late")
        assert cache.get_compiled(("a",)) is None

    def test_iatf_reuses_cached_lowering(self):
        import numpy as np
        iatf = IATF(KUNPENG_920)
        p = GemmProblem(4, 4, 4, "d", batch=4)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 4, 4))
        with obs.scoped() as reg:
            iatf.gemm(a, a, np.zeros_like(a), beta=0.0)
            iatf.gemm(a, a, np.zeros_like(a), beta=0.0)
            counters = reg.counters()
        assert counters["lower.plans"] == 1          # lowered once
        assert counters["backend.compiled.runs"] == 2


class TestThreadSafety:
    def test_concurrent_put_get_never_corrupts(self):
        import threading
        cache = PlanCache(maxsize=16)
        errors = []

        def hammer(seed: int) -> None:
            try:
                for i in range(300):
                    key = (seed, i % 23)
                    cache.put(key, f"plan-{seed}-{i}")
                    cache.put_compiled(key, f"compiled-{seed}-{i}")
                    cache.get(key)
                    cache.get_compiled((seed, (i + 7) % 23))
                    cache.stats()
                    len(cache)
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        s = cache.stats()
        assert s["size"] == len(cache)

    def test_concurrent_planning_through_one_framework(self):
        """Many threads planning and executing distinct shapes through a
        shared IATF must neither crash nor return wrong results."""
        import threading

        import numpy as np

        iatf = IATF(KUNPENG_920, plan_cache_size=8)
        rng = np.random.default_rng(3)
        inputs = {2 + i: rng.standard_normal((4, 2 + i, 2 + i))
                  for i in range(6)}     # generated up front: np.random
        errors = []                      # generators are not thread-safe

        def work(size: int) -> None:
            try:
                a = inputs[size]
                for _ in range(5):
                    got = iatf.gemm(a, a, np.zeros_like(a), beta=0.0)
                    if not np.allclose(got, a @ a, atol=1e-9):
                        raise AssertionError(f"wrong result at {size}")
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(2 + i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
