"""Drift-triggered online re-tuning: record swap, plan-cache
invalidation, and the watch-verdict mapping."""

import pytest

from repro import IATF, KUNPENG_920
from repro import obs
from repro.obs.watch import check_trajectory
from repro.tuning.db import TuningDB
from repro.tuning.tuner import tune_problem
from repro.types import GemmProblem, TrsmProblem

PROBLEM = GemmProblem(6, 6, 6, "d", batch=512)


def _tuned_iatf(tmp_path):
    """An IATF over a saved DB holding one tuned GEMM record."""
    db = TuningDB(path=str(tmp_path / "tuning.json"))
    out = tune_problem(PROBLEM, KUNPENG_920, timestamp=1.0)
    db.put(out.key, out.record)
    db.save()
    return IATF(KUNPENG_920, tuning_db=db), out


def _drift(ratio=2.5, **over):
    d = {"machine_id": KUNPENG_920.machine_id, "routine": "gemm",
         "backend": "fused", "dtype": "d", "shape": [6, 6, 6],
         "batch": 512, "ratio": ratio, "threshold": 0.5}
    d.update(over)
    return d


class TestRetune:
    def test_swaps_record_and_persists(self, tmp_path):
        iatf, old = _tuned_iatf(tmp_path)
        out = iatf.retune(PROBLEM, timestamp=99.0)
        assert out is not None
        assert out.record.sweep == "retune"
        assert out.record.timestamp == 99.0
        # the swap hit both the live DB and the file
        assert iatf.tuning_db.get(old.key) == out.record
        reloaded = TuningDB.load(iatf.tuning_db.path)
        assert reloaded.get(old.key) == out.record

    def test_invalidates_cached_plans(self, tmp_path):
        iatf, _ = _tuned_iatf(tmp_path)
        plan = iatf.plan_gemm(PROBLEM)
        assert iatf.plan_gemm(PROBLEM) is plan          # cached
        # same shape at another batch caches separately but must also go
        iatf.plan_gemm(PROBLEM.with_batch(64))
        iatf.retune(PROBLEM)
        assert iatf.plan_cache_stats["invalidations"] >= 2
        assert iatf.plan_gemm(PROBLEM) is not plan      # re-planned

    def test_unrelated_plans_survive(self, tmp_path):
        iatf, _ = _tuned_iatf(tmp_path)
        other = GemmProblem(9, 9, 9, "d", batch=512)
        kept = iatf.plan_gemm(other)
        iatf.retune(PROBLEM)
        assert iatf.plan_gemm(other) is kept

    def test_no_db_is_counted_not_fatal(self):
        iatf = IATF(KUNPENG_920)
        with obs.scoped() as reg:
            assert iatf.retune(PROBLEM) is None
        counters = reg.snapshot()["counters"]
        assert counters["tuning.retune.skipped"] == 1

    def test_corrupt_db_self_heals(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ nope")
        iatf = IATF(KUNPENG_920, tuning_db=str(path))
        assert iatf.tuning_db.corrupt
        with obs.scoped() as reg:
            out = iatf.retune(PROBLEM)
        assert out is not None
        assert not iatf.tuning_db.corrupt
        assert reg.snapshot()["counters"]["tuning.retune.db_reset"] == 1
        assert not TuningDB.load(path).corrupt          # healed on disk

    def test_events_tell_the_story(self, tmp_path):
        iatf, _ = _tuned_iatf(tmp_path)
        with obs.scoped() as reg:
            iatf.retune(PROBLEM)
            names = [e["name"]
                     for e in reg.events.tail(prefix="tuning.retune.")]
        assert "tuning.retune.scheduled" in names
        assert "tuning.retune.swapped" in names


class TestRetuneFromWatch:
    def test_drift_verdict_maps_and_swaps(self, tmp_path):
        iatf, _ = _tuned_iatf(tmp_path)
        outs = iatf.retune_from_watch([_drift()], timestamp=7.0)
        assert len(outs) == 1
        assert outs[0].record.sweep == "retune"
        assert outs[0].record.timestamp == 7.0

    def test_other_machines_ignored(self, tmp_path):
        iatf, _ = _tuned_iatf(tmp_path)
        assert iatf.retune_from_watch([_drift(machine_id="a64fx")]) == []

    def test_unmappable_verdict_counted(self, tmp_path):
        iatf, _ = _tuned_iatf(tmp_path)
        with obs.scoped() as reg:
            outs = iatf.retune_from_watch(
                [_drift(routine="getrf", shape=[6, 6])])
        assert outs == []
        assert reg.snapshot()["counters"]["tuning.retune.unmapped"] == 1

    def test_trsm_drift_maps(self, tmp_path):
        iatf, _ = _tuned_iatf(tmp_path)
        outs = iatf.retune_from_watch(
            [_drift(routine="trsm", shape=[5, 5])])
        assert len(outs) == 1
        assert outs[0].key.op == "trsm"
        assert outs[0].key == iatf._tuning_key(
            "trsm", TrsmProblem(5, 5, "d", batch=512))

    def test_end_to_end_with_watchdog(self, tmp_path):
        """The full loop: trajectory points -> watch drift verdict ->
        retune -> fresh record + invalidated plan."""
        iatf, old = _tuned_iatf(tmp_path)
        plan = iatf.plan_gemm(PROBLEM)
        pts = [{"schema": 2, "machine": KUNPENG_920.name,
                "machine_id": KUNPENG_920.machine_id, "routine": "gemm",
                "backend": "fused", "dtype": "d", "shape": [6, 6, 6],
                "batch": 512, "gflops": 8.0, "percent_peak": 30.0,
                "wall_seconds": w, "repeats": 3, "timestamp": ts}
               for w, ts in ((0.010, 1.0), (0.025, 2.0))]
        result = check_trajectory(pts, drift_threshold=0.5)
        assert result.exit_code == 0          # drift is advisory
        assert len(result.drifts) == 1
        outs = iatf.retune_from_watch(result.drifts, timestamp=123.0)
        assert len(outs) == 1
        assert iatf.tuning_db.get(old.key).sweep == "retune"
        assert iatf.plan_gemm(PROBLEM) is not plan
