"""Cross-machine portability: the framework retargets beyond the paper.

The install-time stage's analyses (CMAR, register bounds, tiling) and
the run-time stage's decisions (batch counter, pack selection) are all
parameterized by the machine model.  These tests run the full pipeline
on the three modeled machines — Kunpeng 920 (128-bit NEON), Xeon Gold
6240 (AVX-512), and the beyond-the-paper A64FX (512-bit SVE ARM) — and
check both correctness and that the input-aware decisions actually
change with the architecture.
"""

import numpy as np
import pytest

from repro import IATF
from repro.machine.machines import A64FX, KUNPENG_920, XEON_GOLD_6240
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import random_batch, random_triangular, tolerance

MACHINES = [KUNPENG_920, XEON_GOLD_6240, A64FX]


@pytest.fixture(scope="module", params=MACHINES, ids=lambda m: m.name)
def iatf(request):
    return IATF(request.param)


class TestCorrectnessEverywhere:
    @pytest.mark.parametrize("dtype", ["s", "d", "z"])
    def test_gemm(self, iatf, rng, dtype):
        batch = 2 * iatf.machine.lanes(dtype) + 1
        a = random_batch(rng, batch, 7, 5, dtype)
        b = random_batch(rng, batch, 5, 6, dtype)
        got = iatf.gemm(a, b, np.zeros((batch, 7, 6),
                                       dtype=a.dtype), beta=0.0)
        wide = np.complex128 if dtype == "z" else np.float64
        want = a.astype(wide) @ b.astype(wide)
        assert np.abs(got - want).max() < tolerance(dtype)

    @pytest.mark.parametrize("dtype", ["s", "d"])
    def test_trsm(self, iatf, rng, dtype):
        batch = iatf.machine.lanes(dtype) + 1
        a = random_triangular(rng, batch, 9, dtype)
        b = random_batch(rng, batch, 9, 4, dtype)
        x = iatf.trsm(a, b.copy())
        assert np.abs(np.tril(a) @ x - b).max() < 100 * tolerance(dtype)


class TestDecisionsRetarget:
    def test_lanes_follow_vector_width(self):
        assert KUNPENG_920.lanes("s") == 4
        assert A64FX.lanes("s") == 16
        assert A64FX.lanes("d") == 8

    def test_cmar_optimum_stable_across_machines(self):
        """32 registers everywhere -> the 4x4 / 3x2 optima carry over."""
        for m in MACHINES:
            iatf = IATF(m)
            assert iatf.registry.main_gemm_kernel("d") == (4, 4)
            assert iatf.registry.main_gemm_kernel("z") == (3, 2)

    def test_batch_counter_adapts_to_lane_width(self):
        """Wider lanes -> bigger per-group working sets -> fewer groups
        per L1-bounded round (same L1 on Kunpeng and A64FX)."""
        p = GemmProblem(8, 8, 8, "d", batch=16384)
        kp = IATF(KUNPENG_920).plan_gemm(p)
        fx = IATF(A64FX).plan_gemm(p)
        assert fx.groups_per_round < kp.groups_per_round
        assert fx.groups < kp.groups          # 4x fewer, 4x wider groups

    def test_peaks(self):
        assert A64FX.peak_gflops("d") == pytest.approx(70.4)
        assert A64FX.peak_gflops("s") == pytest.approx(140.8)

    def test_long_latency_machine_still_near_peak_with_scheduling(self):
        """A64FX's 9-cycle FMA is hidden by the 16 independent
        accumulators; the optimized kernel must still reach >70% of the
        DP peak from warm L1."""
        from repro.codegen.generator_gemm import generate_gemm_kernel
        from repro.codegen.optimizer import schedule_program
        from repro.machine.pipeline import AddressSpace
        m = A64FX
        prog = schedule_program(generate_gemm_kernel(4, 4, 32, "d", m), m)
        caches = m.make_caches()
        pipe = m.make_pipeline(caches)
        asp = AddressSpace()
        aA = asp.place("pA", 4 * 32 * 64)
        aB = asp.place("pB", 4 * 32 * 64)
        aC = asp.place("C", 4 * 4 * 64)
        for a, nb in [(aA, 4 * 32 * 64), (aB, 4 * 32 * 64), (aC, 1024)]:
            caches.warm_range(a, nb)
        init = {0: aA, 1: aB}
        init.update({2 + j: aC + j * 256 for j in range(4)})
        r = pipe.simulate(prog, init)
        gflops = m.gflops(prog.flops_per_group, r.cycles)
        assert gflops > 0.7 * m.peak_gflops("d")
