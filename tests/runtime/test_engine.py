"""Engine tests: full-pipeline functional correctness and timing sanity."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.layout import CompactBatch
from repro.machine.machines import KUNPENG_920
from repro.reference import gemm_reference, trsm_reference
from repro.runtime.engine import Engine
from repro.runtime.iatf import IATF
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import (ALL_DTYPES, NP_DTYPES, random_batch,
                            random_triangular, tolerance)

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


@pytest.fixture(scope="module")
def iatf():
    return IATF(KUNPENG_920)


def gemm_case(iatf, rng, dtype, mode, m, n, k, batch=9, alpha=1.25,
              beta=0.5):
    p = GemmProblem(m, n, k, dtype, mode[0], mode[1], batch, alpha, beta)
    a = random_batch(rng, batch, *p.a_shape, dtype)
    b = random_batch(rng, batch, *p.b_shape, dtype)
    c = random_batch(rng, batch, m, n, dtype)
    lanes = LANES[dtype]
    cc = CompactBatch.from_matrices(c, lanes)
    iatf.engine.execute_gemm(iatf.plan_gemm(p),
                             CompactBatch.from_matrices(a, lanes),
                             CompactBatch.from_matrices(b, lanes), cc)
    return cc.to_matrices(), gemm_reference(p, a, b, c)


class TestGemmExecution:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("mode", ["NN", "NT", "TN", "TT"])
    def test_modes(self, iatf, rng, dtype, mode):
        got, want = gemm_case(iatf, rng, dtype, mode, 9, 7, 5)
        assert np.abs(got - want).max() < tolerance(dtype)

    @pytest.mark.parametrize("m,n,k", [
        (1, 1, 1), (2, 2, 2), (4, 4, 4), (5, 5, 5), (13, 3, 17),
        (33, 33, 33), (1, 33, 4),
    ])
    def test_shapes(self, iatf, rng, m, n, k):
        got, want = gemm_case(iatf, rng, "d", "NN", m, n, k)
        assert np.abs(got - want).max() < 1e-9

    def test_beta_zero_ignores_garbage_c(self, iatf, rng):
        p = GemmProblem(4, 4, 4, "d", batch=4, beta=0.0)
        a = random_batch(rng, 4, 4, 4, "d")
        b = random_batch(rng, 4, 4, 4, "d")
        c = np.full((4, 4, 4), np.nan)
        lanes = 2
        cc = CompactBatch.from_matrices(np.zeros_like(c), lanes)
        cc.buffer[:] = 7.7   # garbage, should be fully overwritten
        iatf.engine.execute_gemm(iatf.plan_gemm(p),
                                 CompactBatch.from_matrices(a, lanes),
                                 CompactBatch.from_matrices(b, lanes), cc)
        want = gemm_reference(p, a, b, np.zeros_like(a))
        assert np.abs(cc.to_matrices() - want).max() < 1e-9

    def test_force_pack_same_result(self, iatf, rng):
        p = GemmProblem(4, 6, 5, "d", batch=5)
        a = random_batch(rng, 5, 4, 5, "d")
        b = random_batch(rng, 5, 5, 6, "d")
        c = random_batch(rng, 5, 4, 6, "d")
        outs = []
        for force in (False, True):
            cc = CompactBatch.from_matrices(c, 2)
            iatf.engine.execute_gemm(iatf.plan_gemm(p, force_pack=force),
                                     CompactBatch.from_matrices(a, 2),
                                     CompactBatch.from_matrices(b, 2), cc)
            outs.append(cc.to_matrices())
        assert np.array_equal(outs[0], outs[1])

    def test_wrong_shape_rejected(self, iatf, rng):
        p = GemmProblem(4, 4, 4, "d", batch=4)
        good = CompactBatch.from_matrices(random_batch(rng, 4, 4, 4, "d"), 2)
        bad = CompactBatch.from_matrices(random_batch(rng, 4, 5, 4, "d"), 2)
        with pytest.raises(PlanError):
            iatf.engine.execute_gemm(iatf.plan_gemm(p), bad, good, good)

    def test_wrong_batch_rejected(self, iatf, rng):
        p = GemmProblem(4, 4, 4, "d", batch=4)
        four = CompactBatch.from_matrices(random_batch(rng, 4, 4, 4, "d"), 2)
        five = CompactBatch.from_matrices(random_batch(rng, 5, 4, 4, "d"), 2)
        with pytest.raises(PlanError):
            iatf.engine.execute_gemm(iatf.plan_gemm(p), five, four, four)

    def test_kind_mismatch_rejected(self, iatf, rng):
        tp = TrsmProblem(4, 4, "d", batch=4)
        plan = iatf.plan_trsm(tp)
        cb = CompactBatch.from_matrices(random_batch(rng, 4, 4, 4, "d"), 2)
        with pytest.raises(PlanError):
            iatf.engine.execute_gemm(plan, cb, cb, cb)


class TestTrsmExecution:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("side", ["L", "R"])
    @pytest.mark.parametrize("uplo", ["L", "U"])
    @pytest.mark.parametrize("trans", ["N", "T"])
    @pytest.mark.parametrize("diag", ["N", "U"])
    def test_all_16_modes(self, iatf, rng, dtype, side, uplo, trans, diag):
        m, n = 6, 5
        p = TrsmProblem(m, n, dtype, side, uplo, trans, diag, batch=5,
                        alpha=1.5)
        a = random_triangular(rng, 5, p.a_dim, dtype, uplo)
        b = random_batch(rng, 5, m, n, dtype)
        lanes = LANES[dtype]
        cb = CompactBatch.from_matrices(b, lanes)
        iatf.engine.execute_trsm(iatf.plan_trsm(p),
                                 CompactBatch.from_matrices(a, lanes), cb)
        want = trsm_reference(p, a, b)
        assert np.abs(cb.to_matrices() - want).max() < 10 * tolerance(dtype)

    @pytest.mark.parametrize("m", [1, 2, 5, 6, 9, 17, 33])
    def test_sizes_small_and_blocked(self, iatf, rng, m):
        p = TrsmProblem(m, 7, "d", batch=4)
        a = random_triangular(rng, 4, m, "d")
        b = random_batch(rng, 4, m, 7, "d")
        cb = CompactBatch.from_matrices(b, 2)
        iatf.engine.execute_trsm(iatf.plan_trsm(p),
                                 CompactBatch.from_matrices(a, 2), cb)
        want = trsm_reference(p, a, b)
        assert np.abs(cb.to_matrices() - want).max() < 1e-7

    def test_nopack_and_packed_agree(self, iatf, rng):
        p = TrsmProblem(5, 6, "d", batch=4)
        a = random_triangular(rng, 4, 5, "d")
        b = random_batch(rng, 4, 5, 6, "d")
        outs = []
        for force in (False, True):
            cb = CompactBatch.from_matrices(b, 2)
            iatf.engine.execute_trsm(iatf.plan_trsm(p, force_pack=force),
                                     CompactBatch.from_matrices(a, 2), cb)
            outs.append(cb.to_matrices())
        assert np.allclose(outs[0], outs[1], atol=1e-12)


class TestTiming:
    def test_gemm_timing_below_peak_and_positive(self, iatf):
        for n in (2, 8, 24):
            t = iatf.time_gemm(GemmProblem(n, n, n, "d", batch=1024))
            assert 0 < t.gflops < KUNPENG_920.peak_gflops("d")
            assert 0 < t.percent_of_peak < 100

    def test_trsm_timing_below_peak(self, iatf):
        t = iatf.time_trsm(TrsmProblem(8, 8, "d", batch=1024))
        assert 0 < t.gflops < KUNPENG_920.peak_gflops("d")

    def test_timing_deterministic(self, iatf):
        p = GemmProblem(6, 6, 6, "s", batch=256)
        t1 = Engine(KUNPENG_920).time_plan(iatf.plan_gemm(p))
        t2 = Engine(KUNPENG_920).time_plan(iatf.plan_gemm(p))
        assert t1.total_cycles == t2.total_cycles

    def test_breakdown_adds_up(self, iatf):
        t = iatf.time_gemm(GemmProblem(8, 8, 8, "d", batch=512))
        assert t.total_cycles == pytest.approx(
            t.kernel_cycles + t.pack_cycles + t.unpack_cycles
            + t.overhead_cycles)
        assert t.kernel_cycles == t.kernel_cycles_per_group * t.groups

    def test_batch_amortizes_overheads(self, iatf):
        small = iatf.time_gemm(GemmProblem(4, 4, 4, "d", batch=64))
        large = iatf.time_gemm(GemmProblem(4, 4, 4, "d", batch=16384))
        assert large.gflops > small.gflops

    def test_seconds_positive(self, iatf):
        t = iatf.time_gemm(GemmProblem(4, 4, 4, "d", batch=64))
        assert t.seconds > 0


class TestWarmLevels:
    def test_l1_resident_rounds_beat_l2(self):
        """The warm hints the batch counter issues must matter: the same
        plan timed with packed buffers demoted to L2 is slower."""
        import dataclasses
        iatf = IATF(KUNPENG_920)
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=2048))
        base = iatf.engine.time_plan(plan).kernel_cycles_per_group
        demoted = dataclasses.replace(plan, buffers={
            n: (dataclasses.replace(s, warm="l2") if s.warm == "l1" else s)
            for n, s in plan.buffers.items()})
        worse = iatf.engine.time_plan(demoted).kernel_cycles_per_group
        assert worse >= base

    def test_large_problem_degrades_to_l2(self):
        """Working sets past L1 get the L2 verdict automatically."""
        iatf = IATF(KUNPENG_920)
        small = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=2048))
        big = iatf.plan_gemm(GemmProblem(33, 33, 33, "s", batch=2048))
        assert small.buffers["packB"].warm == "l1"
        # 3 * 33^2 * 4 lanes * 4B  ~ 52 KB per group: close to L1; with
        # one-group rounds the planner may still call it L1 — assert the
        # batch counter at least shrank the round
        assert big.groups_per_round <= small.groups_per_round
