"""Backend equivalence and lowering tests.

The ``compiled`` backend must be *bit-identical* to the ``interpret``
reference on every supported configuration — not merely within
tolerance: both paths perform the same float operations in the same
order, so their results are the same bytes.
"""

import time

import numpy as np
import pytest

from repro.errors import ExecutionError, LoweringError, PlanError
from repro.layout import CompactBatch
from repro.machine.machines import KUNPENG_920
from repro.machine.memory import MemorySpace
from repro.runtime.backends import (BACKENDS, DEFAULT_BACKEND,
                                    CompiledBackend, ExecutorBackend,
                                    InterpretBackend, resolve_backend)
from repro.runtime.engine import Engine
from repro.runtime.iatf import IATF
from repro.runtime.lowering import lower_plan
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import ALL_DTYPES, random_batch, random_triangular

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


@pytest.fixture(scope="module")
def iatf():
    return IATF(KUNPENG_920)


def run_gemm_both(iatf, rng, problem, force_pack=False):
    """Execute one GEMM plan on both backends; return the two C buffers."""
    plan = iatf.plan_gemm(problem, force_pack=force_pack)
    lanes = LANES[problem.dtype.value]
    a = random_batch(rng, problem.batch, *problem.a_shape,
                     problem.dtype.value)
    b = random_batch(rng, problem.batch, *problem.b_shape,
                     problem.dtype.value)
    c = random_batch(rng, problem.batch, problem.m, problem.n,
                     problem.dtype.value)
    outs = []
    for backend in ("interpret", "compiled"):
        ca = CompactBatch.from_matrices(a, lanes)
        cb = CompactBatch.from_matrices(b, lanes)
        cc = CompactBatch.from_matrices(c, lanes)
        Engine(KUNPENG_920, backend=backend).execute_gemm(plan, ca, cb, cc)
        outs.append(cc.buffer)
    return outs


def run_trsm_both(iatf, rng, problem, force_pack=False):
    plan = iatf.plan_trsm(problem, force_pack=force_pack)
    lanes = LANES[problem.dtype.value]
    a = random_triangular(rng, problem.batch, problem.a_dim,
                          problem.dtype.value,
                          problem.uplo.value)
    b = random_batch(rng, problem.batch, problem.m, problem.n,
                     problem.dtype.value)
    outs = []
    for backend in ("interpret", "compiled"):
        ca = CompactBatch.from_matrices(a, lanes)
        cb = CompactBatch.from_matrices(b, lanes)
        Engine(KUNPENG_920, backend=backend).execute_trsm(plan, ca, cb)
        outs.append(cb.buffer)
    return outs


class TestGemmEquivalence:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("mode", ["NN", "NT", "TN", "TT"])
    def test_bit_identical_all_modes(self, iatf, rng, dtype, mode):
        p = GemmProblem(9, 7, 5, dtype, mode[0], mode[1], 9, 1.25, 0.5)
        got, want = run_gemm_both(iatf, rng, p)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("force_pack", [False, True])
    def test_bit_identical_pack_paths(self, iatf, rng, dtype, force_pack):
        p = GemmProblem(8, 8, 8, dtype, batch=13)
        got, want = run_gemm_both(iatf, rng, p, force_pack=force_pack)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("m,n,k", [(1, 1, 1), (5, 5, 5), (13, 3, 17),
                                       (33, 33, 33)])
    def test_bit_identical_odd_shapes(self, iatf, rng, m, n, k):
        p = GemmProblem(m, n, k, "d", batch=7)
        got, want = run_gemm_both(iatf, rng, p)
        assert np.array_equal(got, want)


class TestTrsmEquivalence:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_bit_identical_whole_in_regs(self, iatf, rng, dtype):
        p = TrsmProblem(4, 6, dtype, "L", "L", "N", "N", batch=9)
        got, want = run_trsm_both(iatf, rng, p)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_bit_identical_blocked(self, iatf, rng, dtype):
        p = TrsmProblem(12, 6, dtype, "L", "L", "N", "N", batch=9)
        got, want = run_trsm_both(iatf, rng, p)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("side", ["L", "R"])
    @pytest.mark.parametrize("force_pack", [False, True])
    def test_bit_identical_sides_and_pack(self, iatf, rng, side,
                                          force_pack):
        p = TrsmProblem(7, 5, "d", side, "L", "N", "N", batch=6)
        got, want = run_trsm_both(iatf, rng, p, force_pack=force_pack)
        assert np.array_equal(got, want)


class TestLowering:
    def test_stream_has_no_address_arithmetic(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(8, 8, 8, "d", batch=8))
        compiled = lower_plan(plan)
        # every ADDI folded, every PRFM/NOP dropped: stream length plus
        # folded/dropped accounts for every instruction of every call
        s = compiled.stats
        assert s["folded_addi"] > 0
        assert (compiled.num_commands + s["folded_addi"] + s["dropped"]
                == s["instructions"])

    def test_gather_indices_matches_group_view(self, iatf, rng):
        """The slice a command replays addresses exactly the elements the
        interpreter's per-instruction index arrays would gather."""
        plan = iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=5))
        compiled = lower_plan(plan)
        groups = compiled.groups
        mem = MemorySpace()
        mats = {}
        for name, lay in compiled.buffers.items():
            arr = rng.standard_normal(groups * lay.stride_elems)
            mem.bind(name, arr)
            mats[name] = mem.group_view(name, groups, lay.stride_elems)
        for cmd in compiled.mem_commands():
            buf, first, count, step = cmd.access()
            lay = compiled.buffers[buf]
            idx = cmd.gather_indices(groups, lay.stride_elems)
            assert idx.shape == (groups, count)
            flat = mem[buf]
            assert np.array_equal(flat[idx],
                                  mats[buf][:, first:first + count])

    def test_misaligned_offset_raises(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=4))
        plan = _tampered(plan, a_off=3)     # not a multiple of ew=8
        with pytest.raises(LoweringError, match="misaligned"):
            lower_plan(plan)

    def test_out_of_bounds_offset_raises(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=4))
        plan = _tampered(plan, a_off=1 << 20)
        with pytest.raises(LoweringError, match="group stride"):
            lower_plan(plan)

    def test_unknown_buffer_raises(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=4))
        plan = _tampered(plan, a_buf="bogus")
        with pytest.raises(LoweringError, match="bogus"):
            lower_plan(plan)

    def test_describe_mentions_folding(self, iatf):
        compiled = lower_plan(iatf.plan_gemm(GemmProblem(4, 4, 4, "d",
                                                         batch=4)))
        text = compiled.describe()
        assert "ADDIs folded" in text
        assert "commands" in text

    def test_immediates_precast_to_element_dtype(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "s", batch=4,
                                          alpha=1.1, beta=0.3))
        compiled = lower_plan(plan)
        from repro.runtime.lowering import K_FIMM, K_FMAI, K_FMULI
        imms = [cmd[-1] for cmd in compiled.commands
                if cmd[0] in (K_FIMM, K_FMAI, K_FMULI)]
        assert imms, "scaled gemm should carry immediates"
        assert all(isinstance(i, np.float32) for i in imms)


def _tampered(plan, **repl):
    """Copy of a plan with its first call's fields replaced."""
    import copy
    import dataclasses
    plan = copy.copy(plan)
    plan.calls = list(plan.calls)
    plan.calls[0] = dataclasses.replace(plan.calls[0], **repl)
    return plan


class TestBackendSelection:
    def test_default_is_compiled(self):
        assert DEFAULT_BACKEND == "compiled"
        assert Engine(KUNPENG_920).backend.name == "compiled"
        assert IATF(KUNPENG_920).backend.name == "compiled"

    def test_registry_contents(self):
        assert set(BACKENDS) == {"interpret", "compiled"}
        assert isinstance(resolve_backend("interpret"), InterpretBackend)
        assert isinstance(resolve_backend("compiled"), CompiledBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(PlanError, match="unknown executor backend"):
            resolve_backend("jit")

    def test_non_backend_object_raises(self):
        with pytest.raises(PlanError, match="protocol"):
            resolve_backend(42)

    def test_instances_satisfy_protocol(self):
        assert isinstance(InterpretBackend(), ExecutorBackend)
        assert isinstance(CompiledBackend(), ExecutorBackend)

    def test_custom_backend_instance_accepted(self, iatf, rng):
        """A user-supplied object implementing the protocol plugs in."""
        ran = []

        class Recording:
            name = "recording"
            needs_lowering = False

            def run(self, plan, mem, strides, groups, compiled=None):
                ran.append(groups)
                InterpretBackend().run(plan, mem, strides, groups)

        fw = IATF(KUNPENG_920, backend=Recording())
        assert fw.backend.name == "recording"
        p = GemmProblem(4, 4, 4, "d", batch=4)
        a = random_batch(rng, 4, 4, 4, "d")
        got = fw.gemm(a, a, np.zeros_like(a), beta=0.0)
        assert ran == [2]
        assert np.allclose(got, a @ a, atol=1e-9)

    def test_group_count_mismatch_raises(self, iatf, rng):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=4))
        compiled = lower_plan(plan)
        mem = MemorySpace()
        with pytest.raises(ExecutionError, match="groups"):
            CompiledBackend().run(plan, mem, {}, groups=7,
                                  compiled=compiled)


class TestObservability:
    def test_backend_run_counter_and_lowering_span(self):
        import repro.obs as obs
        fw = IATF(KUNPENG_920)
        p = GemmProblem(4, 4, 4, "d", batch=4)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 4, 4))
        with obs.scoped() as reg:
            fw.gemm(a, a, np.zeros_like(a), beta=0.0)
            counters = reg.counters()
            assert counters.get("backend.compiled.runs", 0) >= 1
            assert counters.get("lower.plans", 0) >= 1
            assert counters.get("lower.commands", 0) > 0
            assert any(s.name == "lower.plan" for s in reg.spans)


@pytest.mark.slow
class TestPerfGuard:
    def test_compiled_beats_interpret_on_large_batch(self, rng):
        """The lowering payoff on the paper's headline batch size: the
        compiled replay must beat per-instruction interpretation on
        batch-16384 sgemm (m=n=k=8) wall clock."""
        p = GemmProblem(8, 8, 8, "s", batch=16384)
        a = random_batch(rng, p.batch, 8, 8, "s")
        lanes = LANES["s"]
        times = {}
        for backend in ("interpret", "compiled"):
            fw = IATF(KUNPENG_920, backend=backend)
            ca = CompactBatch.from_matrices(a, lanes)
            cb = CompactBatch.from_matrices(a, lanes)
            cc = CompactBatch.from_matrices(np.zeros_like(a), lanes)
            fw.gemm_compact(p, ca, cb, cc)       # warm: plan + lowering
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                fw.gemm_compact(p, ca, cb, cc)
                best = min(best, time.perf_counter() - t0)
            times[backend] = best
        # bench/experiments.backend_showdown shows ~2x; guard a softer
        # bound so background load cannot flake CI
        assert times["compiled"] < 0.75 * times["interpret"], times
