"""Backend equivalence and lowering tests.

Every executor backend must be *bit-identical* to the ``interpret``
reference on every supported configuration — not merely within
tolerance: all paths perform the same float operations in the same
order (fusion never reassociates, sharding splits independent groups),
so their results are the same bytes.
"""

import time

import numpy as np
import pytest

from repro.errors import ExecutionError, LoweringError, PlanError
from repro.layout import CompactBatch
from repro.machine.machines import KUNPENG_920
from repro.machine.memory import MemorySpace
from repro.runtime.backends import (BACKENDS, DEFAULT_BACKEND,
                                    DEFAULT_INNER, CompiledBackend,
                                    ExecutorBackend, FusedBackend,
                                    InterpretBackend, MegakernelBackend,
                                    ParallelBackend, resolve_backend)
from repro.runtime.engine import Engine
from repro.runtime.iatf import IATF
from repro.runtime.lowering import lower_plan
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import ALL_DTYPES, random_batch, random_triangular

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}

# every registered backend, the parallel wrapper at worker counts that
# divide the group count, exceed it, and split it unevenly, and the
# trace compiler both bare and sharded under the wrapper
EQUIV_BACKENDS = (
    ("interpret", {}),
    ("compiled", {}),
    ("fused", {}),
    ("megakernel", {}),
    ("parallel", {"workers": 1}),
    ("parallel", {"workers": 2}),
    ("parallel", {"workers": 5}),
    ("parallel", {"inner": "megakernel", "workers": 3}),
)


def assert_bit_identical(outs):
    ref = outs[0].tobytes()
    for (backend, kw), out in zip(EQUIV_BACKENDS[1:], outs[1:]):
        assert out.tobytes() == ref, (
            f"backend {backend!r} ({kw}) diverged from interpret")


@pytest.fixture(scope="module")
def iatf():
    return IATF(KUNPENG_920)


def run_gemm_both(iatf, rng, problem, force_pack=False):
    """Execute one GEMM plan on every backend; return the C buffers."""
    plan = iatf.plan_gemm(problem, force_pack=force_pack)
    lanes = LANES[problem.dtype.value]
    a = random_batch(rng, problem.batch, *problem.a_shape,
                     problem.dtype.value)
    b = random_batch(rng, problem.batch, *problem.b_shape,
                     problem.dtype.value)
    c = random_batch(rng, problem.batch, problem.m, problem.n,
                     problem.dtype.value)
    outs = []
    for backend, kw in EQUIV_BACKENDS:
        ca = CompactBatch.from_matrices(a, lanes)
        cb = CompactBatch.from_matrices(b, lanes)
        cc = CompactBatch.from_matrices(c, lanes)
        Engine(KUNPENG_920, backend=backend,
               **kw).execute_gemm(plan, ca, cb, cc)
        outs.append(cc.buffer)
    return outs


def run_trsm_both(iatf, rng, problem, force_pack=False):
    plan = iatf.plan_trsm(problem, force_pack=force_pack)
    lanes = LANES[problem.dtype.value]
    a = random_triangular(rng, problem.batch, problem.a_dim,
                          problem.dtype.value,
                          problem.uplo.value)
    b = random_batch(rng, problem.batch, problem.m, problem.n,
                     problem.dtype.value)
    outs = []
    for backend, kw in EQUIV_BACKENDS:
        ca = CompactBatch.from_matrices(a, lanes)
        cb = CompactBatch.from_matrices(b, lanes)
        Engine(KUNPENG_920, backend=backend,
               **kw).execute_trsm(plan, ca, cb)
        outs.append(cb.buffer)
    return outs


class TestGemmEquivalence:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("mode", ["NN", "NT", "TN", "TT"])
    def test_bit_identical_all_modes(self, iatf, rng, dtype, mode):
        p = GemmProblem(9, 7, 5, dtype, mode[0], mode[1], 9, 1.25, 0.5)
        assert_bit_identical(run_gemm_both(iatf, rng, p))

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("force_pack", [False, True])
    def test_bit_identical_pack_paths(self, iatf, rng, dtype, force_pack):
        p = GemmProblem(8, 8, 8, dtype, batch=13)
        assert_bit_identical(run_gemm_both(iatf, rng, p,
                                           force_pack=force_pack))

    @pytest.mark.parametrize("m,n,k", [(1, 1, 1), (5, 5, 5), (13, 3, 17),
                                       (33, 33, 33)])
    def test_bit_identical_odd_shapes(self, iatf, rng, m, n, k):
        p = GemmProblem(m, n, k, "d", batch=7)
        assert_bit_identical(run_gemm_both(iatf, rng, p))


class TestTrsmEquivalence:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_bit_identical_whole_in_regs(self, iatf, rng, dtype):
        p = TrsmProblem(4, 6, dtype, "L", "L", "N", "N", batch=9)
        assert_bit_identical(run_trsm_both(iatf, rng, p))

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_bit_identical_blocked(self, iatf, rng, dtype):
        p = TrsmProblem(12, 6, dtype, "L", "L", "N", "N", batch=9)
        assert_bit_identical(run_trsm_both(iatf, rng, p))

    @pytest.mark.parametrize("side", ["L", "R"])
    @pytest.mark.parametrize("force_pack", [False, True])
    def test_bit_identical_sides_and_pack(self, iatf, rng, side,
                                          force_pack):
        p = TrsmProblem(7, 5, "d", side, "L", "N", "N", batch=6)
        assert_bit_identical(run_trsm_both(iatf, rng, p,
                                           force_pack=force_pack))


class TestLowering:
    def test_stream_has_no_address_arithmetic(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(8, 8, 8, "d", batch=8))
        compiled = lower_plan(plan)
        # every ADDI folded, every PRFM/NOP dropped: stream length plus
        # folded/dropped accounts for every instruction of every call
        s = compiled.stats
        assert s["folded_addi"] > 0
        assert (compiled.num_commands + s["folded_addi"] + s["dropped"]
                == s["instructions"])

    def test_gather_indices_matches_group_view(self, iatf, rng):
        """The slice a command replays addresses exactly the elements the
        interpreter's per-instruction index arrays would gather."""
        plan = iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=5))
        compiled = lower_plan(plan)
        groups = compiled.groups
        mem = MemorySpace()
        mats = {}
        for name, lay in compiled.buffers.items():
            arr = rng.standard_normal(groups * lay.stride_elems)
            mem.bind(name, arr)
            mats[name] = mem.group_view(name, groups, lay.stride_elems)
        for cmd in compiled.mem_commands():
            buf, first, count, step = cmd.access()
            lay = compiled.buffers[buf]
            idx = cmd.gather_indices(groups, lay.stride_elems)
            assert idx.shape == (groups, count)
            flat = mem[buf]
            assert np.array_equal(flat[idx],
                                  mats[buf][:, first:first + count])

    def test_misaligned_offset_raises(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=4))
        plan = _tampered(plan, a_off=3)     # not a multiple of ew=8
        with pytest.raises(LoweringError, match="misaligned"):
            lower_plan(plan)

    def test_out_of_bounds_offset_raises(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=4))
        plan = _tampered(plan, a_off=1 << 20)
        with pytest.raises(LoweringError, match="group stride"):
            lower_plan(plan)

    def test_unknown_buffer_raises(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=4))
        plan = _tampered(plan, a_buf="bogus")
        with pytest.raises(LoweringError, match="bogus"):
            lower_plan(plan)

    def test_describe_mentions_folding(self, iatf):
        compiled = lower_plan(iatf.plan_gemm(GemmProblem(4, 4, 4, "d",
                                                         batch=4)))
        text = compiled.describe()
        assert "ADDIs folded" in text
        assert "commands" in text

    def test_immediates_precast_to_element_dtype(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "s", batch=4,
                                          alpha=1.1, beta=0.3))
        compiled = lower_plan(plan)
        from repro.runtime.lowering import K_FIMM, K_FMAI, K_FMULI
        imms = [cmd[-1] for cmd in compiled.commands
                if cmd[0] in (K_FIMM, K_FMAI, K_FMULI)]
        assert imms, "scaled gemm should carry immediates"
        assert all(isinstance(i, np.float32) for i in imms)


def _tampered(plan, **repl):
    """Copy of a plan with its first call's fields replaced."""
    import copy
    import dataclasses
    plan = copy.copy(plan)
    plan.calls = list(plan.calls)
    plan.calls[0] = dataclasses.replace(plan.calls[0], **repl)
    return plan


class TestBackendSelection:
    def test_default_is_compiled(self):
        assert DEFAULT_BACKEND == "compiled"
        assert Engine(KUNPENG_920).backend.name == "compiled"
        assert IATF(KUNPENG_920).backend.name == "compiled"

    def test_registry_contents(self):
        assert set(BACKENDS) == {"interpret", "compiled", "fused",
                                 "megakernel", "parallel"}
        assert isinstance(resolve_backend("interpret"), InterpretBackend)
        assert isinstance(resolve_backend("compiled"), CompiledBackend)
        assert isinstance(resolve_backend("fused"), FusedBackend)
        assert isinstance(resolve_backend("megakernel"), MegakernelBackend)
        assert isinstance(resolve_backend("parallel"), ParallelBackend)

    def test_unknown_name_error_lists_all_backends(self):
        """The unknown-name PlanError must name every registered
        backend — including the ones added after the message was first
        written (a stale list sent users hunting for spellings)."""
        with pytest.raises(PlanError, match="unknown executor backend"):
            resolve_backend("jit")
        try:
            resolve_backend("jit")
        except PlanError as e:
            msg = str(e)
        for name in ("interpret", "compiled", "fused", "megakernel",
                     "parallel"):
            assert name in msg, f"error message omits {name!r}: {msg}"

    def test_non_backend_object_rejected_before_first_use(self):
        """A non-conforming object must fail at resolution time, not
        blow up with an AttributeError mid-execution."""
        with pytest.raises(PlanError, match="protocol"):
            resolve_backend(42)

        class NoRun:                      # has name, run not callable
            name = "norun"
            needs_lowering = False
            run = "not callable"

        with pytest.raises(PlanError, match="protocol"):
            resolve_backend(NoRun())
        with pytest.raises(PlanError, match="protocol"):
            Engine(KUNPENG_920, backend=object())
        with pytest.raises(PlanError, match="protocol"):
            IATF(KUNPENG_920, backend=3.14)

    def test_named_backends_are_cached(self):
        """Every run_plan used to construct a fresh backend object;
        named resolutions now share one instance per configuration."""
        for name in ("interpret", "compiled", "fused"):
            assert resolve_backend(name) is resolve_backend(name)
        assert Engine(KUNPENG_920).backend is Engine(KUNPENG_920).backend
        p2 = resolve_backend("parallel", workers=2)
        assert p2 is resolve_backend("parallel", workers=2)
        assert p2 is not resolve_backend("parallel", workers=3)
        assert (resolve_backend("parallel", inner="compiled", workers=2)
                is not p2)

    def test_parallel_cache_key_normalizes_defaults(self):
        """The wrapper cache keys on the FULL parameterization with
        defaults normalized first: omitting an option and spelling out
        its default must resolve to the same instance (two pools for
        one configuration was the bug), while a different mode is a
        different instance."""
        from repro.runtime.backends import _default_workers
        p = resolve_backend("parallel")
        assert p is resolve_backend("parallel", inner=DEFAULT_INNER)
        assert p is resolve_backend("parallel",
                                    workers=_default_workers())
        assert p is resolve_backend("parallel", mode="thread")
        proc = resolve_backend("parallel", mode="process")
        assert proc is not p
        assert proc is resolve_backend("parallel", mode="process")
        assert proc.mode == "process" and p.mode == "thread"

    def test_explicit_instance_passes_through_uncached(self):
        mine = CompiledBackend()
        assert resolve_backend(mine) is mine
        assert resolve_backend(mine) is not resolve_backend("compiled")

    def test_inner_workers_rejected_for_non_parallel(self):
        with pytest.raises(PlanError, match="parallel"):
            resolve_backend("compiled", workers=2)
        with pytest.raises(PlanError, match="parallel"):
            resolve_backend("fused", inner="compiled")
        with pytest.raises(PlanError, match="parallel"):
            resolve_backend("megakernel", mode="process")
        with pytest.raises(PlanError, match="instance"):
            resolve_backend(CompiledBackend(), workers=2)
        with pytest.raises(PlanError, match="instance"):
            resolve_backend(CompiledBackend(), mode="thread")

    def test_parallel_configuration_errors(self):
        with pytest.raises(PlanError, match="wrap itself"):
            ParallelBackend(inner="parallel")
        with pytest.raises(PlanError, match="workers"):
            ParallelBackend(workers=0)
        with pytest.raises(PlanError, match="mode"):
            ParallelBackend(mode="fiber")

    def test_parallel_defaults_and_inner_instance(self):
        p = resolve_backend("parallel")
        assert p.inner.name == DEFAULT_INNER == "fused"
        assert p.workers >= 1
        assert p.needs_lowering == p.inner.needs_lowering
        inner = InterpretBackend()
        q = resolve_backend("parallel", inner=inner, workers=2)
        assert q.inner is inner
        assert not q.needs_lowering

    def test_shard_ranges_cover_and_balance(self):
        for groups in (1, 2, 7, 16, 4096):
            for shards in (1, 2, 3, 5, 8, 100):
                ranges = ParallelBackend.shard_ranges(groups, shards)
                assert ranges[0][0] == 0 and ranges[-1][1] == groups
                sizes = [stop - start for start, stop in ranges]
                assert all(s > 0 for s in sizes)
                assert max(sizes) - min(sizes) <= 1
                assert len(ranges) <= min(shards, groups)
                for (_, a), (b, _) in zip(ranges, ranges[1:]):
                    assert a == b

    def test_instances_satisfy_protocol(self):
        assert isinstance(InterpretBackend(), ExecutorBackend)
        assert isinstance(CompiledBackend(), ExecutorBackend)
        assert isinstance(FusedBackend(), ExecutorBackend)
        assert isinstance(MegakernelBackend(), ExecutorBackend)
        assert isinstance(ParallelBackend(), ExecutorBackend)

    def test_custom_backend_instance_accepted(self, iatf, rng):
        """A user-supplied object implementing the protocol plugs in."""
        ran = []

        class Recording:
            name = "recording"
            needs_lowering = False

            def run(self, plan, mem, strides, groups, compiled=None):
                ran.append(groups)
                InterpretBackend().run(plan, mem, strides, groups)

        fw = IATF(KUNPENG_920, backend=Recording())
        assert fw.backend.name == "recording"
        p = GemmProblem(4, 4, 4, "d", batch=4)
        a = random_batch(rng, 4, 4, 4, "d")
        got = fw.gemm(a, a, np.zeros_like(a), beta=0.0)
        assert ran == [2]
        assert np.allclose(got, a @ a, atol=1e-9)

    def test_group_count_mismatch_raises(self, iatf, rng):
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=4))
        compiled = lower_plan(plan)
        mem = MemorySpace()
        with pytest.raises(ExecutionError, match="groups"):
            CompiledBackend().run(plan, mem, {}, groups=7,
                                  compiled=compiled)


class TestObservability:
    def test_backend_run_counter_and_lowering_span(self):
        import repro.obs as obs
        fw = IATF(KUNPENG_920)
        p = GemmProblem(4, 4, 4, "d", batch=4)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 4, 4))
        with obs.scoped() as reg:
            fw.gemm(a, a, np.zeros_like(a), beta=0.0)
            counters = reg.counters()
            assert counters.get("backend.compiled.runs", 0) >= 1
            assert counters.get("lower.plans", 0) >= 1
            assert counters.get("lower.commands", 0) > 0
            assert any(s.name == "lower.plan" for s in reg.spans)


@pytest.mark.slow
class TestPerfGuard:
    def test_compiled_beats_interpret_on_large_batch(self, rng):
        """The lowering payoff on the paper's headline batch size: the
        compiled replay must beat per-instruction interpretation on
        batch-16384 sgemm (m=n=k=8) wall clock."""
        p = GemmProblem(8, 8, 8, "s", batch=16384)
        a = random_batch(rng, p.batch, 8, 8, "s")
        lanes = LANES["s"]
        times = {}
        for backend in ("interpret", "compiled"):
            fw = IATF(KUNPENG_920, backend=backend)
            ca = CompactBatch.from_matrices(a, lanes)
            cb = CompactBatch.from_matrices(a, lanes)
            cc = CompactBatch.from_matrices(np.zeros_like(a), lanes)
            fw.gemm_compact(p, ca, cb, cc)       # warm: plan + lowering
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                fw.gemm_compact(p, ca, cb, cc)
                best = min(best, time.perf_counter() - t0)
            times[backend] = best
        # bench/experiments.backend_showdown shows ~2x; guard a softer
        # bound so background load cannot flake CI
        assert times["compiled"] < 0.75 * times["interpret"], times

    def test_fused_not_slower_than_compiled_on_large_batch(self, rng):
        """The optimizing pass pipeline's payoff: replaying macro-ops
        must never cost wall clock versus the raw stream on the same
        headline shape (measured speedup is ~1.5-2x; guard only against
        regression so background load cannot flake CI)."""
        p = GemmProblem(8, 8, 8, "s", batch=16384)
        a = random_batch(rng, p.batch, 8, 8, "s")
        lanes = LANES["s"]
        times = {}
        for backend in ("compiled", "fused"):
            fw = IATF(KUNPENG_920, backend=backend)
            ca = CompactBatch.from_matrices(a, lanes)
            cb = CompactBatch.from_matrices(a, lanes)
            cc = CompactBatch.from_matrices(np.zeros_like(a), lanes)
            fw.gemm_compact(p, ca, cb, cc)       # warm: plan + lowering
            best = float("inf")
            for _ in range(5):
                t0 = time.perf_counter()
                fw.gemm_compact(p, ca, cb, cc)
                best = min(best, time.perf_counter() - t0)
            times[backend] = best
        assert times["fused"] <= 1.10 * times["compiled"], times
