"""Compact-TRMM extension tests."""

import numpy as np
import pytest

from repro.extensions import CompactTrmm
from repro.extensions.trmm import normalize_trmm_mode
from repro.layout import CompactBatch
from repro.machine.machines import KUNPENG_920
from repro.types import TrmmProblem
from tests.conftest import ALL_DTYPES, NP_DTYPES, random_batch, tolerance

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


@pytest.fixture(scope="module")
def trmm():
    return CompactTrmm(KUNPENG_920)


def reference_trmm(p: TrmmProblem, a, b):
    wide = np.complex128 if p.dtype.is_complex else np.float64
    tri = (np.tril(a) if p.uplo.value == "L" else np.triu(a)).astype(wide)
    if p.diag.value == "U":
        d = p.a_dim
        idx = np.arange(d)
        tri[:, idx, idx] = 1.0
    op = tri if p.transa.value == "N" else tri.transpose(0, 2, 1)
    out = op @ b if p.side.value == "L" else b @ op
    return (p.alpha * out).astype(p.dtype.np_dtype)


def run_case(trmm, rng, dtype, side, uplo, trans, diag, m, n, batch=5,
             alpha=1.5):
    p = TrmmProblem(m, n, dtype, side, uplo, trans, diag, batch, alpha)
    a = random_batch(rng, batch, p.a_dim, p.a_dim, dtype)
    tri = np.tril(a) if uplo == "L" else np.triu(a)
    tri = tri.astype(NP_DTYPES[dtype])
    b = random_batch(rng, batch, m, n, dtype)
    cb = CompactBatch.from_matrices(b, LANES[dtype])
    trmm.execute(p, CompactBatch.from_matrices(tri, LANES[dtype]), cb)
    return cb.to_matrices(), reference_trmm(p, tri, b)


class TestCorrectness:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_basic(self, trmm, rng, dtype):
        got, want = run_case(trmm, rng, dtype, "L", "L", "N", "N", 7, 6)
        assert np.abs(got - want).max() < tolerance(dtype)

    @pytest.mark.parametrize("side", ["L", "R"])
    @pytest.mark.parametrize("uplo", ["L", "U"])
    @pytest.mark.parametrize("trans", ["N", "T"])
    @pytest.mark.parametrize("diag", ["N", "U"])
    def test_all_modes(self, trmm, rng, side, uplo, trans, diag):
        got, want = run_case(trmm, rng, "d", side, uplo, trans, diag, 6, 5)
        assert np.abs(got - want).max() < 1e-9

    @pytest.mark.parametrize("m,n", [(1, 1), (4, 4), (5, 7), (15, 9),
                                     (33, 4)])
    def test_shapes(self, trmm, rng, m, n):
        got, want = run_case(trmm, rng, "d", "L", "L", "N", "N", m, n)
        assert np.abs(got - want).max() < 1e-9


class TestStructureExploitation:
    def test_structured_madds_about_half_dense(self, trmm):
        plan = trmm.plan(TrmmProblem(32, 32, "d", batch=64))
        s = plan.meta["madds_structured"]
        d = plan.meta["madds_dense"]
        assert 0.45 < s / d < 0.65

    def test_variable_k_kernels(self, trmm):
        plan = trmm.plan(TrmmProblem(12, 4, "d", batch=64))
        ks = sorted({c.program.meta["k"] for c in plan.calls})
        assert ks == [4, 8, 12]      # K grows with the row block

    def test_faster_than_dense_gemm(self, trmm):
        """The structured TRMM must beat running a dense GEMM of the
        same order through IATF (zeros and all)."""
        from repro import IATF
        from repro.types import GemmProblem
        n = 24
        t_trmm = trmm.time(TrmmProblem(n, n, "d", batch=4096))
        t_gemm = IATF(KUNPENG_920).time_gemm(
            GemmProblem(n, n, n, "d", batch=4096, beta=0.0))
        assert t_trmm.total_cycles < t_gemm.total_cycles


class TestNormalization:
    def test_reuses_trsm_transforms(self):
        p = TrmmProblem(4, 5, "d", "R", "U", "N", "U", alpha=2.0)
        n = normalize_trmm_mode(p)
        assert n.d == 5 and n.transpose_b
        assert n.unit and n.alpha == 2.0

    def test_plan_cached(self, trmm):
        p = TrmmProblem(6, 6, "d", batch=32)
        assert trmm.plan(p) is trmm.plan(p)
