"""Trace-compiler (megakernel backend) specific tests.

Bit-equivalence across the full backend matrix lives in
``test_backends.py`` (EQUIV_BACKENDS includes ``megakernel`` and the
``parallel``x``megakernel`` composition); this module covers what is
unique to the trace compiler: deterministic codegen, compile-once
caching, special-value replay, trace partitioning invariants, and the
process-mode sharding it composes with.
"""

import time

import numpy as np
import pytest

import repro.obs as obs
from repro.errors import ExecutionError
from repro.layout import CompactBatch
from repro.machine.machines import KUNPENG_920
from repro.runtime.backends import ParallelBackend, resolve_backend
from repro.runtime.engine import Engine
from repro.runtime.iatf import IATF
from repro.runtime.lowering import lower_plan, partition_trace
from repro.runtime.megakernel import (PROGRAM_KEY, MegakernelBackend,
                                      ensure_program, generate_source)
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import random_batch

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


@pytest.fixture(scope="module")
def iatf():
    return IATF(KUNPENG_920)


class TestTracePartition:
    def test_segments_cover_raw_stream(self, iatf):
        compiled = lower_plan(iatf.plan_gemm(GemmProblem(8, 8, 8, "s",
                                                         batch=64)))
        segs = partition_trace(compiled)
        assert segs, "a lowered gemm plan must partition into segments"
        assert segs[0].start == 0
        assert segs[-1].stop == len(compiled.commands)
        for a, b in zip(segs, segs[1:]):
            assert a.stop == b.start
        # merged spans account for every raw call
        assert sum(s.calls for s in segs) == len(compiled.call_ranges)

    def test_segment_kernels_match_call_ranges(self, iatf):
        compiled = lower_plan(iatf.plan_trsm(TrsmProblem(12, 6, "d", "L",
                                                         "L", "N", "N",
                                                         batch=8)))
        segs = partition_trace(compiled)
        seg_kernels = [s.kernel for s in segs]
        # consecutive same-kernel calls merge, so the segment kernel
        # sequence is the run-length-collapsed call sequence
        collapsed = []
        for name, _, _ in compiled.call_ranges:
            if not collapsed or collapsed[-1] != name:
                collapsed.append(name)
        assert seg_kernels == collapsed

    def test_stream_concatenates_segments(self, iatf):
        compiled = lower_plan(iatf.plan_gemm(GemmProblem(8, 8, 8, "s",
                                                         batch=64)))
        cmds, max_stack = MegakernelBackend.stream(compiled)
        segs = partition_trace(compiled)
        assert cmds == [c for s in segs for c in s.commands]
        assert max_stack == max(s.max_stack for s in segs)


class TestCodegen:
    def test_generated_source_is_deterministic(self, iatf):
        """Same plan -> byte-identical generated source, both across
        repeated codegen of one lowering and across independent
        lowerings of the same plan (no dict-order or id() leakage)."""
        p = GemmProblem(8, 8, 8, "s", batch=128)
        c1 = lower_plan(iatf.plan_gemm(p))
        c2 = lower_plan(iatf.plan_gemm(p))
        s1a, k1a, _ = generate_source(c1)
        s1b, k1b, _ = generate_source(c1)
        s2, k2, _ = generate_source(c2)
        assert s1a == s1b == s2
        assert list(k1a) == list(k1b) == list(k2)

    def test_generated_source_shape(self, iatf):
        src, _consts, meta = generate_source(
            lower_plan(iatf.plan_gemm(GemmProblem(8, 8, 8, "s",
                                                  batch=128))))
        assert "def _stage(" in src
        for i in range(len(meta["segments"])):
            assert f"def _seg{i}(" in src
        # steady state is straight-line numpy: no interpreter loop
        assert "for " not in src.replace("for cmd", "")

    def test_program_compiles_and_caches(self, iatf):
        compiled = lower_plan(iatf.plan_gemm(GemmProblem(8, 8, 8, "s",
                                                         batch=128)))
        with obs.scoped() as reg:
            prog1 = ensure_program(compiled)
            prog2 = ensure_program(compiled)
            counters = reg.counters()
        assert prog1 is prog2
        assert compiled.attachments[PROGRAM_KEY] is prog1
        assert counters.get("megakernel.compile.miss", 0) == 1
        assert counters.get("megakernel.compile.hit", 0) == 1
        assert prog1.stats["loc"] > 0
        assert prog1.stats["segments"] == len(prog1.segments)

    def test_second_run_compiles_nothing(self, rng):
        """Cache reuse end to end: after the first execution the
        program rides the plan-cache's lowering, so the second run is
        pure cache hits — zero compiles."""
        fw = IATF(KUNPENG_920, backend="megakernel")
        p = GemmProblem(8, 8, 8, "s", batch=32)
        a = random_batch(rng, p.batch, 8, 8, "s")
        lanes = LANES["s"]

        def run():
            ca = CompactBatch.from_matrices(a, lanes)
            cb = CompactBatch.from_matrices(a, lanes)
            cc = CompactBatch.from_matrices(np.zeros_like(a), lanes)
            fw.gemm_compact(p, ca, cb, cc)

        run()                               # first: compiles + caches
        with obs.scoped() as reg:
            run()                           # second: must not compile
            counters = reg.counters()
        assert counters.get("megakernel.compile.miss", 0) == 0
        assert counters.get("megakernel.compile.hit", 0) >= 1

    def test_attachments_never_pickle(self, iatf):
        """Generated code objects cannot pickle; the side slot must be
        stripped so a lowered plan stays shippable across processes."""
        import pickle

        compiled = lower_plan(iatf.plan_gemm(GemmProblem(4, 4, 4, "d",
                                                         batch=8)))
        ensure_program(compiled)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.attachments == {}
        assert clone.commands == compiled.commands


class TestSpecialValues:
    @pytest.mark.parametrize("dtype", ["s", "d"])
    def test_nan_inf_negzero_replay_bit_identical(self, rng, dtype):
        """NaN payloads, infinities, and -0.0 must survive the
        generated code exactly as the interpreter leaves them — the
        codegen mirrors the replay's operation set, so the bytes (not
        just the values) must match."""
        p = GemmProblem(8, 8, 8, dtype, batch=24)
        lanes = LANES[dtype]
        a = random_batch(rng, p.batch, 8, 8, dtype)
        b = random_batch(rng, p.batch, 8, 8, dtype)
        c = random_batch(rng, p.batch, 8, 8, dtype)
        a[0, 0, 0] = np.nan
        a[1, 2, 3] = np.inf
        b[2, 1, 0] = -np.inf
        b[3, 3, 3] = -0.0
        c[4, 0, 7] = np.nan
        fw = IATF(KUNPENG_920)
        plan = fw.plan_gemm(p)
        outs = []
        for backend in ("interpret", "megakernel"):
            ca = CompactBatch.from_matrices(a, lanes)
            cb = CompactBatch.from_matrices(b, lanes)
            cc = CompactBatch.from_matrices(c, lanes)
            Engine(KUNPENG_920, backend=backend).execute_gemm(plan, ca,
                                                              cb, cc)
            outs.append(cc.buffer.tobytes())
        assert outs[0] == outs[1]


class TestProcessMode:
    def test_process_mode_bit_identical(self, rng):
        p = GemmProblem(8, 8, 8, "s", batch=40)
        lanes = LANES["s"]
        a = random_batch(rng, p.batch, 8, 8, "s")
        fw = IATF(KUNPENG_920)
        plan = fw.plan_gemm(p)
        outs = []
        for cfg in ({"backend": "interpret"},
                    {"backend": "parallel", "inner": "megakernel",
                     "workers": 3, "mode": "process"},
                    {"backend": "parallel", "inner": "fused",
                     "workers": 2, "mode": "process"}):
            ca = CompactBatch.from_matrices(a, lanes)
            cb = CompactBatch.from_matrices(a, lanes)
            cc = CompactBatch.from_matrices(np.zeros_like(a), lanes)
            Engine(KUNPENG_920, **cfg).execute_gemm(plan, ca, cb, cc)
            outs.append(cc.buffer.tobytes())
        assert outs[1] == outs[0]
        assert outs[2] == outs[0]

    def test_process_shard_failure_surfaces(self, rng, iatf):
        """A crashing shard must fail the whole run with a diagnosable
        error, not hang or silently drop the shard's groups."""
        class Exploding:
            name = "exploding"
            needs_lowering = False

            def run(self, plan, mem, strides, groups, compiled=None):
                raise RuntimeError("boom in shard")

        backend = ParallelBackend(inner=Exploding(), workers=2,
                                  mode="process")
        plan = iatf.plan_gemm(GemmProblem(4, 4, 4, "d", batch=8))
        lanes = LANES["d"]
        a = random_batch(rng, 8, 4, 4, "d")
        with pytest.raises(ExecutionError, match="shard"):
            Engine(KUNPENG_920, backend=backend).execute_gemm(
                plan, CompactBatch.from_matrices(a, lanes),
                CompactBatch.from_matrices(a, lanes),
                CompactBatch.from_matrices(np.zeros_like(a), lanes))

    def test_mode_reported_by_resolver(self):
        proc = resolve_backend("parallel", inner="megakernel", workers=2,
                               mode="process")
        assert proc.mode == "process"
        assert proc.inner.name == "megakernel"


@pytest.mark.slow
class TestPerfGuard:
    def test_megakernel_not_slower_than_fused_on_large_batch(self, rng):
        """The trace compiler's payoff on the headline shape: measured
        ~1.5x over fused on an otherwise idle single core, guarded here
        only as not-slower so background load cannot flake CI (the CI
        perf smoke and the watchdog's --mega-floor carry the real
        floor)."""
        p = GemmProblem(8, 8, 8, "s", batch=16384)
        a = random_batch(rng, p.batch, 8, 8, "s")
        lanes = LANES["s"]
        times = {}
        for backend in ("fused", "megakernel"):
            fw = IATF(KUNPENG_920, backend=backend)
            ca = CompactBatch.from_matrices(a, lanes)
            cb = CompactBatch.from_matrices(a, lanes)
            cc = CompactBatch.from_matrices(np.zeros_like(a), lanes)
            fw.gemm_compact(p, ca, cb, cc)       # warm: plan + compile
            best = float("inf")
            for _ in range(5):
                t0 = time.perf_counter()
                fw.gemm_compact(p, ca, cb, cc)
                best = min(best, time.perf_counter() - t0)
            times[backend] = best
        assert times["megakernel"] <= 1.10 * times["fused"], times
