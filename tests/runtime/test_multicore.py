"""Multicore scaling-model tests (future-work extension)."""

import pytest

from repro.machine.machines import KUNPENG_920
from repro.runtime.multicore import MulticoreModel
from repro.types import GemmProblem, TrsmProblem


@pytest.fixture(scope="module")
def problem():
    return GemmProblem(8, 8, 8, "d", batch=16384)


def test_one_core_matches_single(problem):
    m = MulticoreModel(KUNPENG_920, 1)
    t = m.time_gemm(problem)
    assert t.speedup == pytest.approx(1.0, rel=0.01)


def test_speedup_monotone_in_cores(problem):
    prev = 0.0
    for cores in (1, 2, 4, 8, 16, 32):
        t = MulticoreModel(KUNPENG_920, cores).time_gemm(problem)
        assert t.speedup >= prev
        prev = t.speedup


def test_speedup_bounded_by_cores(problem):
    for cores in (2, 8, 64):
        t = MulticoreModel(KUNPENG_920, cores).time_gemm(problem)
        assert t.speedup <= cores + 1e-9
        assert 0 < t.efficiency <= 1.0 + 1e-9


def test_pack_bound_sizes_saturate():
    """Tiny (pack-dominated) problems scale worse past the bandwidth
    wall than compute-bound ones."""
    tiny = GemmProblem(2, 2, 2, "d", batch=16384)
    big = GemmProblem(24, 24, 24, "d", batch=16384)
    cores = 32
    e_tiny = MulticoreModel(KUNPENG_920, cores).time_gemm(tiny).efficiency
    e_big = MulticoreModel(KUNPENG_920, cores).time_gemm(big).efficiency
    assert e_big > e_tiny


def test_more_cores_than_groups():
    p = GemmProblem(4, 4, 4, "d", batch=8)    # 4 groups
    t = MulticoreModel(KUNPENG_920, 64).time_gemm(p)
    assert t.speedup <= 4 + 1


def test_trsm_scales_too():
    p = TrsmProblem(8, 8, "d", batch=16384)
    t = MulticoreModel(KUNPENG_920, 8).time_trsm(p)
    assert 2 < t.speedup <= 8


def test_gflops_scales():
    p = GemmProblem(16, 16, 16, "d", batch=16384)
    t1 = MulticoreModel(KUNPENG_920, 1).time_gemm(p)
    t8 = MulticoreModel(KUNPENG_920, 8).time_gemm(p)
    assert t8.gflops > 4 * t1.gflops


def test_rejects_bad_cores():
    with pytest.raises(ValueError):
        MulticoreModel(KUNPENG_920, 0)
