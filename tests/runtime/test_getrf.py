"""Compact batched LU (GETRF) extension tests."""

import numpy as np
import pytest

from repro.errors import CodegenError, InvalidProblemError
from repro.extensions import CompactGetrf, generate_lu_kernel, max_lu_order
from repro.layout import CompactBatch
from repro.machine.isa import Op
from repro.machine.machines import KUNPENG_920
from tests.conftest import ALL_DTYPES, NP_DTYPES, random_batch, tolerance

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


@pytest.fixture(scope="module")
def getrf():
    return CompactGetrf(KUNPENG_920)


def dominant(rng, batch, d, dtype):
    a = random_batch(rng, batch, d, d, dtype)
    return (a + d * np.eye(d)).astype(NP_DTYPES[dtype])


def lu_residual(a, factored, dtype):
    wide = np.complex128 if dtype in ("c", "z") else np.float64
    out = factored.astype(wide)
    d = a.shape[1]
    low = np.tril(out, -1) + np.eye(d)
    up = np.triu(out)
    return np.abs(low @ up - a.astype(wide)).max() / np.abs(a).max()


class TestBounds:
    def test_register_bounds(self):
        assert max_lu_order("s") == 5
        assert max_lu_order("d") == 5
        assert max_lu_order("c") == 3
        assert max_lu_order("z") == 3

    def test_kernel_rejects_oversize(self):
        with pytest.raises(CodegenError):
            generate_lu_kernel(6, "d", KUNPENG_920)
        with pytest.raises(CodegenError):
            generate_lu_kernel(4, "z", KUNPENG_920)


class TestKernelStructure:
    def test_one_division_per_pivot(self):
        prog = generate_lu_kernel(5, "d", KUNPENG_920)
        assert prog.count(Op.FDIV) == 5

    def test_complex_two_divisions_per_pivot(self):
        prog = generate_lu_kernel(3, "z", KUNPENG_920)
        assert prog.count(Op.FDIV) == 6

    def test_register_budget(self):
        for d in range(1, 6):
            assert generate_lu_kernel(d, "d", KUNPENG_920).max_vreg < 32
        for d in range(1, 4):
            assert generate_lu_kernel(d, "z", KUNPENG_920).max_vreg < 32


class TestFactorization:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("d", [1, 2, 3, 5, 7, 9, 16])
    def test_lu_reconstructs(self, getrf, rng, dtype, d):
        if dtype in ("c", "z") and d == 5:
            d = 6    # keep a blocked case instead of the real-only order
        a = dominant(rng, 5, d, dtype)
        cb = CompactBatch.from_matrices(a, LANES[dtype])
        getrf.factor(cb)
        err = lu_residual(a, cb.to_matrices(), dtype)
        assert err < 10 * tolerance(dtype), (dtype, d)

    def test_matches_scipy_lu(self, getrf, rng):
        import scipy.linalg
        a = dominant(rng, 3, 6, "d")
        cb = CompactBatch.from_matrices(a, 2)
        getrf.factor(cb)
        got = cb.to_matrices()
        for i in range(3):
            lu, piv = scipy.linalg.lu_factor(a[i])
            assert list(piv) == list(range(6))   # no pivoting occurred
            assert np.allclose(got[i], lu, atol=1e-9)

    def test_rejects_nonsquare(self, getrf, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 3, 4, "d"), 2)
        with pytest.raises(InvalidProblemError):
            getrf.factor(cb)


class TestSolve:
    @pytest.mark.parametrize("dtype", ["s", "d", "z"])
    @pytest.mark.parametrize("d", [2, 5, 11])
    def test_solve_residual(self, getrf, rng, dtype, d):
        batch = 4
        a = dominant(rng, batch, d, dtype)
        b = random_batch(rng, batch, d, 3, dtype)
        ca = CompactBatch.from_matrices(a, LANES[dtype])
        cb = CompactBatch.from_matrices(b, LANES[dtype])
        getrf.factor(ca)
        getrf.solve(ca, cb)
        x = cb.to_matrices()
        wide = np.complex128 if dtype == "z" else np.float64
        resid = np.abs(a.astype(wide) @ x - b).max()
        assert resid < 100 * tolerance(dtype)

    def test_solve_shape_mismatch(self, getrf, rng):
        a = CompactBatch.from_matrices(dominant(rng, 2, 4, "d"), 2)
        b = CompactBatch.from_matrices(random_batch(rng, 2, 5, 2, "d"), 2)
        getrf.factor(a)
        with pytest.raises(InvalidProblemError):
            getrf.solve(a, b)


class TestBlockExtraction:
    def test_roundtrip(self, rng):
        a = random_batch(rng, 5, 7, 6, "d")
        cb = CompactBatch.from_matrices(a, 2)
        blk = cb.extract_block(2, 5, 1, 4)
        assert np.allclose(blk.to_matrices(), a[:, 2:5, 1:4])
        blk.buffer[:] *= 2
        cb.write_block(2, 1, blk)
        out = cb.to_matrices()
        assert np.allclose(out[:, 2:5, 1:4], 2 * a[:, 2:5, 1:4])
        assert np.allclose(out[:, :2], a[:, :2])

    def test_bounds_checked(self, rng):
        from repro.errors import LayoutError
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 4, 4, "d"), 2)
        with pytest.raises(LayoutError):
            cb.extract_block(0, 5, 0, 2)
        blk = cb.extract_block(0, 2, 0, 2)
        with pytest.raises(LayoutError):
            cb.write_block(3, 3, blk)

    def test_property_mismatch_rejected(self, rng):
        from repro.errors import LayoutError
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 4, 4, "d"), 2)
        other = CompactBatch.from_matrices(random_batch(rng, 4, 2, 2, "d"), 2)
        with pytest.raises(LayoutError):
            cb.write_block(0, 0, other)
