"""Unit tests for the optimizing pass pipeline over synthetic streams.

The equivalence suite (test_backends.py) proves end-to-end that the
fused backend reproduces interpret bytes; these tests pin down *why*
by driving :func:`optimize_commands` over hand-built command streams
where the expected rewrite is known exactly — which chains fuse, where
segmentation cuts, what coalesces, what DCE may and may not remove.
"""

import numpy as np
import pytest

from repro.machine.isa import NUM_VREGS
from repro.machine.machines import KUNPENG_920
from repro.runtime.backends import CompiledBackend
from repro.runtime.iatf import IATF
from repro.runtime.lowering import (FUSE_MIN_CHAIN, K_FMLA, K_FMLS, K_FMUL,
                                    K_FMULI, K_LOAD, K_LOAD1R, K_LOADW,
                                    K_MACC, K_STORE, K_STOREPAIR, K_STOREW,
                                    K_VZERO, lower_plan, optimize_commands)
from repro.types import GemmProblem

LANES = 4                     # float32 vector: 4 lanes * 4 B = 16 B
EW = 4
STRIDE_ELEMS = 32             # 128 B group stride — 16-byte eligible
STRIDES = {"a": STRIDE_ELEMS * EW, "b": STRIDE_ELEMS * EW,
           "c": STRIDE_ELEMS * EW}

PASS_KEYS = ("commands_before", "commands_after", "dce_removed",
             "fuse_chains", "fuse_commands", "fuse_max_chain",
             "coalesce_loads", "coalesce_stores", "coalesce_commands",
             "coalesce_vectorized", "max_stack")


def optimize(commands, strides=STRIDES):
    return optimize_commands(commands, LANES, EW, strides)


def kinds(commands):
    return [c[0] for c in commands]


def replay(commands, bufs, max_stack=0):
    """Drive the shared replay loop directly over synthetic buffers."""
    groups = next(iter(bufs.values())).shape[0]
    rbank = np.zeros((NUM_VREGS, groups, LANES), dtype=np.float32)
    scratch = np.empty((groups, LANES), dtype=np.float32)
    stacks = (np.empty((2, max_stack, groups, LANES), dtype=np.float32)
              if max_stack else None)
    rbankC = rbank.view(np.complex128)
    matsC = {name: (v.view(np.complex128)
                    if (v.shape[1] * v.itemsize) % 16 == 0 else None)
             for name, v in bufs.items()}
    with np.errstate(all="ignore"):
        CompiledBackend._replay(commands, bufs, list(rbank), rbank,
                                scratch, stacks, matsC, rbankC)
    return rbank


class TestDce:
    def test_removes_write_never_read(self):
        cmds = [(K_LOAD, 8, "a", 0, LANES),
                (K_FMUL, 20, 8, 8),          # v20 never read again
                (K_STORE, 8, "c", 0, LANES)]
        out, p = optimize(cmds)
        assert p["dce_removed"] == 1
        assert all(k != K_FMUL for k in kinds(out))

    def test_stores_always_survive(self):
        cmds = [(K_VZERO, 0), (K_STORE, 0, "c", 0, LANES)]
        out, p = optimize(cmds)
        assert p["dce_removed"] == 0
        assert K_STOREW in kinds(out) or K_STORE in kinds(out)

    def test_accumulator_chain_is_live(self):
        """FMLA reads its destination, so an earlier write into the
        accumulator can never be considered dead."""
        cmds = [(K_VZERO, 0), (K_LOAD, 8, "a", 0, LANES),
                (K_FMLA, 0, 8, 8), (K_STORE, 0, "c", 0, LANES)]
        _, p = optimize(cmds)
        assert p["dce_removed"] == 0


class TestFusion:
    def chain(self, n, kind=K_FMLA, first_dst=0):
        return [(kind, first_dst + i, 8, 9) for i in range(n)]

    def prologue(self):
        return [(K_LOAD, 8, "a", 0, LANES), (K_LOAD, 9, "a", 4, LANES)]

    def epilogue(self, n, first_dst=0):
        return [(K_STORE, first_dst + i, "c", 4 * i, LANES)
                for i in range(n)]

    def test_chain_fuses_into_one_macc(self):
        cmds = self.prologue() + self.chain(6) + self.epilogue(6)
        out, p = optimize(cmds)
        maccs = [c for c in out if c[0] == K_MACC]
        assert len(maccs) == 1 and p["fuse_chains"] == 1
        _, dsel, aids, bids, neg, n = maccs[0]
        assert n == 6 and not neg
        assert dsel == slice(0, 6)          # consecutive dsts -> slice
        assert aids == (8,) * 6 and bids == (9,) * 6
        assert p["fuse_commands"] == 5      # 6 raw -> 1 macro-op
        assert p["fuse_max_chain"] == 6
        assert p["max_stack"] >= 6

    def test_chain_below_min_stays_raw(self):
        n = FUSE_MIN_CHAIN - 1
        cmds = self.prologue() + self.chain(n) + self.epilogue(n)
        out, p = optimize(cmds)
        assert p["fuse_chains"] == 0
        assert kinds(out).count(K_FMLA) == n

    def test_fmls_chain_fuses_negated(self):
        cmds = self.prologue() + self.chain(4, kind=K_FMLS) \
            + self.epilogue(4)
        out, _ = optimize(cmds)
        (macc,) = [c for c in out if c[0] == K_MACC]
        assert macc[4] is True              # neg flag

    def test_repeated_accumulator_splits_segments(self):
        """A run revisiting its accumulators (the next k-step) must
        split into consecutive macro-ops, never one vectorized
        accumulate — ``d += p1; d += p2`` is order-dependent."""
        cmds = (self.prologue() + self.chain(4) + self.chain(4)
                + self.epilogue(4))
        out, p = optimize(cmds)
        maccs = [c for c in out if c[0] == K_MACC]
        assert len(maccs) == 2 and p["fuse_chains"] == 2
        assert [m[5] for m in maccs] == [4, 4]

    def test_mixed_sign_and_repeat_reemits_raw(self):
        """Segments shorter than FUSE_MIN_CHAIN fall back to the raw
        commands in original order."""
        members = [(K_FMLA, 5, 1, 2), (K_FMLA, 6, 3, 4),
                   (K_FMLA, 5, 1, 4), (K_FMLS, 5, 2, 3)]
        loads = [(K_LOAD, r, "a", 4 * i, LANES)
                 for i, r in enumerate((1, 2, 3, 4, 5, 6))]
        stores = [(K_STORE, 5, "c", 0, LANES),
                  (K_STORE, 6, "c", 4, LANES)]
        out, p = optimize(loads + members + stores)
        assert p["fuse_chains"] == 0
        fp = [c for c in out if c[0] in (K_FMLA, K_FMLS)]
        assert fp == members                 # order preserved exactly

    def test_non_conflicting_command_hoists_past_run(self):
        """The generated kernels interleave next-step loads with the
        FMLAs; a load touching neither sources nor accumulators must
        not break the chain."""
        cmds = (self.prologue() + self.chain(2)
                + [(K_LOAD, 12, "b", 0, LANES)]      # independent
                + self.chain(2, first_dst=2) + self.epilogue(4))
        out, p = optimize(cmds)
        assert p["fuse_chains"] == 1 and p["fuse_max_chain"] == 4
        ks = kinds(out)
        assert ks.index(K_LOADW) < ks.index(K_MACC) or \
            ks.index(K_LOAD) < ks.index(K_MACC)

    def test_conflicting_write_seals_run(self):
        """Reloading a source register mid-run invalidates the fused
        read-all-sources-at-seal semantics: the run must seal first."""
        cmds = (self.prologue() + self.chain(2)
                + [(K_LOAD, 8, "a", 8, LANES)]       # clobbers source v8
                + self.chain(2, first_dst=2) + self.epilogue(4))
        _, p = optimize(cmds)
        assert p["fuse_chains"] == 0         # both halves below min


class TestCoalesce:
    def test_adjacent_loads_merge_wide(self):
        cmds = [(K_LOAD, 0, "a", 0, LANES), (K_LOAD, 1, "a", 4, LANES),
                (K_STORE, 0, "c", 0, LANES), (K_STORE, 1, "c", 4, LANES)]
        out, p = optimize(cmds)
        assert kinds(out) == [K_LOADW, K_STOREW]
        _, dsel, buf, first, n, count, cfirst = out[0]
        assert (buf, first, n, count) == ("a", 0, LANES, 2)
        assert cfirst == 0                   # 16-byte eligible
        assert p["coalesce_loads"] == 1 and p["coalesce_stores"] == 1
        assert p["coalesce_commands"] == 2
        assert p["coalesce_vectorized"] == 2

    def test_storepair_counts_as_two_pieces(self):
        cmds = [(K_VZERO, 0), (K_VZERO, 1), (K_VZERO, 2),
                (K_STORE, 0, "c", 0, LANES),
                (K_STOREPAIR, 1, 2, "c", 4, LANES)]
        out, _ = optimize(cmds)
        (wide,) = [c for c in out if c[0] == K_STOREW]
        assert wide[5] == 3                  # three registers, one copy

    def test_ineligible_stride_merges_without_vectorizing(self):
        strides = {"a": 136, "c": 136}       # not a multiple of 16
        cmds = [(K_LOAD, 0, "a", 0, LANES), (K_LOAD, 1, "a", 4, LANES),
                (K_STORE, 0, "c", 0, LANES), (K_STORE, 1, "c", 4, LANES)]
        out, p = optimize(cmds, strides)
        assert out[0][0] == K_LOADW and out[0][6] == -1
        assert p["coalesce_vectorized"] == 0

    def test_lone_eligible_copy_goes_wide(self):
        cmds = [(K_LOAD, 0, "a", 8, LANES), (K_STORE, 0, "c", 8, LANES)]
        out, p = optimize(cmds)
        assert kinds(out) == [K_LOADW, K_STOREW]
        assert out[0][5] == 1 and out[0][6] == 8 * EW // 16
        assert p["coalesce_commands"] == 0   # nothing merged away

    def test_lone_misaligned_copy_stays_raw(self):
        cmds = [(K_LOAD, 0, "a", 2, LANES), (K_STORE, 0, "c", 2, LANES)]
        out, _ = optimize(cmds)
        assert kinds(out) == [K_LOAD, K_STORE]

    def test_repeated_load_destination_breaks_run(self):
        cmds = [(K_LOAD, 0, "a", 0, LANES), (K_LOAD, 0, "a", 4, LANES),
                (K_STORE, 0, "c", 0, LANES)]
        out, _ = optimize(cmds)
        wides = [c for c in out if c[0] == K_LOADW]
        assert all(w[5] == 1 for w in wides)  # never merged into one


class TestReplayEquivalence:
    def synthetic(self):
        """A stream exercising every rewrite at once: fusable chains,
        segment cuts (repeat + sign flip), a hoistable load, dead code,
        coalescible and lone stores."""
        L = LANES
        return [
            (K_LOAD, 8, "a", 0, L), (K_LOAD, 9, "a", 4, L),
            (K_LOAD1R, 10, "b", 0),
            (K_VZERO, 0), (K_VZERO, 1), (K_VZERO, 2), (K_VZERO, 3),
            (K_FMLA, 0, 8, 10), (K_FMLA, 1, 8, 9),
            (K_FMLA, 2, 9, 10), (K_FMLA, 3, 8, 8),
            (K_LOAD, 11, "b", 4, L),         # hoistable mid-run
            (K_FMLA, 0, 9, 11),              # accumulator revisit
            (K_FMLS, 1, 8, 11),              # sign flip
            (K_FMLS, 2, 9, 11), (K_FMLS, 3, 10, 11),
            (K_FMULI, 4, 0, np.float32(1.5)),
            (K_FMUL, 20, 8, 9),              # dead: v20 never read
            (K_STORE, 0, "c", 0, L), (K_STORE, 1, "c", 4, L),
            (K_STOREPAIR, 2, 3, "c", 8, L),
            (K_STORE, 4, "c", 16, L),
            (K_STORE, 0, "c", 22, 2),        # partial, ineligible
        ]

    def test_optimized_stream_bit_identical(self, rng):
        raw = self.synthetic()
        opt, p = optimize(raw)
        assert p["commands_after"] < p["commands_before"]
        assert p["dce_removed"] == 1 and p["fuse_chains"] >= 1
        groups = 37                          # deliberately odd
        for seed_bufs in range(3):
            data = {name: rng.standard_normal(
                        (groups, STRIDE_ELEMS)).astype(np.float32)
                    for name in ("a", "b", "c")}
            ref = {name: v.copy() for name, v in data.items()}
            replay(raw, ref)
            replay(opt, data, max_stack=p["max_stack"])
            for name in ("a", "b", "c"):
                assert data[name].tobytes() == ref[name].tobytes(), name

    def test_special_values_survive_fusion(self, rng):
        """NaN payloads and signed zeros ride through macro-ops
        unchanged — subtract is never rewritten as negate-then-add."""
        raw = self.synthetic()
        opt, p = optimize(raw)
        data = {name: rng.standard_normal(
                    (8, STRIDE_ELEMS)).astype(np.float32)
                for name in ("a", "b", "c")}
        data["a"][:, :2] = [np.nan, np.inf]
        data["b"][:, :2] = [-0.0, -np.inf]
        ref = {name: v.copy() for name, v in data.items()}
        replay(raw, ref)
        replay(opt, data, max_stack=p["max_stack"])
        assert data["c"].tobytes() == ref["c"].tobytes()


class TestPlanIntegration:
    @pytest.fixture(scope="class")
    def compiled(self):
        fw = IATF(KUNPENG_920)
        return lower_plan(fw.plan_gemm(GemmProblem(8, 8, 8, "s", batch=16)))

    def test_stats_shape_and_payoff(self, compiled):
        p = compiled.stats["passes"]
        for key in PASS_KEYS:
            assert key in p, key
        assert p["commands_after"] < p["commands_before"]
        assert p["fuse_chains"] > 0 and p["coalesce_vectorized"] > 0

    def test_describe_mentions_passes(self, compiled):
        text = compiled.describe()
        assert "optimized" in text and "fused" in text

    def test_counters_emitted(self):
        import repro.obs as obs
        fw = IATF(KUNPENG_920)
        plan = fw.plan_gemm(GemmProblem(8, 8, 8, "d", batch=8))
        with obs.scoped() as reg:
            lower_plan(plan)
            counters = reg.counters()
        for name in ("lower.dce.removed", "lower.fuse.chains",
                     "lower.fuse.commands", "lower.coalesce.merged"):
            assert name in counters, name
        assert counters["lower.fuse.chains"] > 0

    def test_for_groups_shares_streams(self, compiled):
        assert compiled.for_groups(compiled.groups) is compiled
        half = compiled.for_groups(3)
        assert half.groups == 3
        assert half.commands is compiled.commands
        assert half.fused_commands is compiled.fused_commands
