"""Batch-counter tests (paper Section 5.1)."""

import pytest

from repro.machine.machines import KUNPENG_920, XEON_GOLD_6240
from repro.runtime.batch_counter import (gemm_group_working_bytes,
                                         groups_per_round,
                                         trsm_group_working_bytes)
from repro.types import GemmProblem, TrsmProblem


class TestWorkingSets:
    def test_gemm_counts_a_b_c(self):
        p = GemmProblem(4, 4, 4, "d")
        # (16 + 16 + 16) elements x 2 lanes x 8 bytes
        assert gemm_group_working_bytes(p, KUNPENG_920) == 48 * 2 * 8

    def test_gemm_complex_doubles(self):
        p = GemmProblem(4, 4, 4, "z")
        assert gemm_group_working_bytes(p, KUNPENG_920) == 48 * 2 * 2 * 8

    def test_trsm_counts_triangle_and_b(self):
        p = TrsmProblem(4, 6, "d")
        # triangle 10 + B 24 elements, 2 lanes, 8 bytes
        assert trsm_group_working_bytes(p, KUNPENG_920) == 34 * 2 * 8

    def test_trsm_right_side_uses_n(self):
        p = TrsmProblem(6, 4, "d", side="R")
        assert trsm_group_working_bytes(p, KUNPENG_920) == \
            (10 + 24) * 2 * 8


class TestGroupsPerRound:
    def test_small_problems_batch_heavily(self):
        p = GemmProblem(2, 2, 2, "d")
        ws = gemm_group_working_bytes(p, KUNPENG_920)
        g = groups_per_round(ws, KUNPENG_920)
        assert g == KUNPENG_920.l1.size // ws
        assert g > 100

    def test_huge_problem_degenerates_to_one(self):
        g = groups_per_round(10 * KUNPENG_920.l1.size, KUNPENG_920)
        assert g == 1

    def test_exact_fit(self):
        assert groups_per_round(KUNPENG_920.l1.size, KUNPENG_920) == 1
        assert groups_per_round(KUNPENG_920.l1.size // 2, KUNPENG_920) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            groups_per_round(0, KUNPENG_920)

    def test_smaller_l1_fewer_groups(self):
        ws = 1024
        assert groups_per_round(ws, XEON_GOLD_6240) < \
            groups_per_round(ws, KUNPENG_920)


class TestTotalGroupsClamp:
    """Regression: a round must never claim more groups than the batch
    actually has — tiny batches of tiny matrices used to report rounds
    of hundreds of phantom groups."""

    def test_clamped_to_total_groups(self):
        p = GemmProblem(2, 2, 2, "d")
        ws = gemm_group_working_bytes(p, KUNPENG_920)
        unclamped = groups_per_round(ws, KUNPENG_920)
        assert unclamped > 4                 # tiny working set, big L1
        assert groups_per_round(ws, KUNPENG_920, total_groups=4) == 4

    def test_no_clamp_when_batch_is_larger(self):
        ws = KUNPENG_920.l1.size // 8
        assert groups_per_round(ws, KUNPENG_920, total_groups=1000) == 8

    def test_clamp_never_below_one(self):
        # one group over L1 still yields one group regardless of clamp
        assert groups_per_round(10 * KUNPENG_920.l1.size, KUNPENG_920,
                                total_groups=1) == 1

    def test_default_is_unclamped(self):
        ws = 1024
        assert groups_per_round(ws, KUNPENG_920) == \
            KUNPENG_920.l1.size // ws

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            groups_per_round(1024, KUNPENG_920, total_groups=0)

    def test_plan_rounds_cover_batch_exactly(self):
        """End to end: a plan for a tiny batch reports a round no larger
        than its group count."""
        from repro import IATF

        iatf = IATF(KUNPENG_920)
        plan = iatf.plan_gemm(GemmProblem(2, 2, 2, "d", batch=8))
        assert plan.groups_per_round <= plan.groups
        assert plan.groups_per_round == plan.groups  # clamp engaged here
