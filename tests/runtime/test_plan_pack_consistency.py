"""Plan <-> pack agreement: offsets computed in two places must match.

The plan builder computes packed-panel offsets analytically (it has no
data); the packing functions compute them while gathering.  If either
side changes its layout without the other, kernels read garbage — these
tests pin the contract directly instead of relying on end-to-end
numerics to catch it.
"""

import pytest

from repro.codegen.registry import KernelRegistry
from repro.layout import CompactBatch
from repro.machine.machines import KUNPENG_920
from repro.packing.gemm_pack import pack_gemm_a, pack_gemm_b
from repro.packing.trsm_pack import normalize_trsm_mode, pack_trsm_a
from repro.runtime.plan import build_gemm_plan, build_trsm_plan
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import random_batch, random_triangular


@pytest.fixture(scope="module")
def registry():
    return KernelRegistry(KUNPENG_920, optimize=False)


@pytest.mark.parametrize("m,n,k,mode", [
    (9, 7, 5, "NN"), (15, 15, 15, "NN"), (8, 8, 8, "TT"), (5, 11, 3, "NT"),
])
def test_gemm_offsets_agree(rng, registry, m, n, k, mode):
    p = GemmProblem(m, n, k, "d", mode[0], mode[1], batch=6)
    plan = build_gemm_plan(p, KUNPENG_920, registry, force_pack=True)
    a = CompactBatch.from_matrices(random_batch(rng, 6, *p.a_shape, "d"), 2)
    b = CompactBatch.from_matrices(random_batch(rng, 6, *p.b_shape, "d"), 2)
    pa = pack_gemm_a(a, p.transa, k, plan.meta["m_tiles"])
    pb = pack_gemm_b(b, p.transb, k, plan.meta["n_tiles"])
    assert pa.group_stride_bytes == plan.buffers["packA"].group_stride_bytes
    assert pb.group_stride_bytes == plan.buffers["packB"].group_stride_bytes
    plan_a_offs = sorted({c.a_off for c in plan.calls})
    plan_b_offs = sorted({c.b_off for c in plan.calls})
    assert plan_a_offs == sorted(pa.tile_offsets)
    assert plan_b_offs == sorted(pb.tile_offsets)


@pytest.mark.parametrize("d", [7, 9, 12, 17])
def test_trsm_blocked_offsets_agree(rng, registry, d):
    p = TrsmProblem(d, 4, "d", batch=4)
    plan = build_trsm_plan(p, KUNPENG_920, registry)
    norm = plan.meta["norm"]
    a = CompactBatch.from_matrices(random_triangular(rng, 4, d, "d"), 2)
    packed = pack_trsm_a(a, norm, plan.meta["blocks"])
    assert packed.group_stride_bytes == \
        plan.buffers["packT"].group_stride_bytes
    # every triangular call's a_off must be a pack tri offset, every
    # rect call's a_off a rect offset
    tri_offs = set(packed.tri_offsets)
    rect_offs = set(packed.rect_offsets.values())
    for call in plan.calls:
        routine = call.program.meta["routine"]
        if routine == "trsm_tri":
            assert call.a_off in tri_offs, call.program.name
        else:
            assert call.a_off in rect_offs, call.program.name


def test_gemm_pack_cost_matches_buffers(registry):
    p = GemmProblem(8, 8, 8, "d", batch=64)
    plan = build_gemm_plan(p, KUNPENG_920, registry, force_pack=True)
    per_group = (plan.buffers["packA"].group_stride_bytes
                 + plan.buffers["packB"].group_stride_bytes)
    assert plan.pack_cost.bytes_written == per_group * plan.groups
