"""Execution-plan structure tests: tiles, offsets, pack decisions."""

import pytest

from repro.codegen.registry import KernelRegistry
from repro.machine.machines import KUNPENG_920
from repro.runtime.plan import build_gemm_plan, build_trsm_plan
from repro.types import GemmProblem, TrsmProblem


@pytest.fixture(scope="module")
def registry():
    return KernelRegistry(KUNPENG_920, optimize=False)


class TestGemmPlan:
    def test_call_count_is_tile_grid(self, registry):
        p = GemmProblem(15, 15, 15, "d", batch=64)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        assert plan.meta["m_tiles"] == [4, 4, 4, 3]
        assert plan.meta["n_tiles"] == [4, 4, 4, 3]
        assert len(plan.calls) == 16

    def test_kernel_sizes_match_tiles(self, registry):
        p = GemmProblem(7, 5, 3, "d", batch=8)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        sizes = {(c.program.meta["mc"], c.program.meta["nc"])
                 for c in plan.calls}
        assert sizes == {(4, 3), (4, 2), (3, 3), (3, 2)}
        for c in plan.calls:
            assert c.program.meta["k"] == 3

    def test_nopack_a_when_single_tile_nn(self, registry):
        p = GemmProblem(4, 8, 8, "d", batch=8)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        assert plan.meta["packing"]["A"] == "no-pack"
        assert "packA" not in plan.buffers
        assert all(c.a_buf == "A" for c in plan.calls)

    def test_pack_a_when_tall(self, registry):
        p = GemmProblem(8, 8, 8, "d", batch=8)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        assert plan.meta["packing"]["A"] == "N-shape"
        assert "packA" in plan.buffers

    def test_nopack_b_when_transposed_single_tile(self, registry):
        p = GemmProblem(8, 4, 8, "d", transb="T", batch=8)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        assert plan.meta["packing"]["B"] == "no-pack"

    def test_force_pack_disables_fast_path(self, registry):
        p = GemmProblem(4, 4, 8, "d", transb="T", batch=8)
        plan = build_gemm_plan(p, KUNPENG_920, registry, force_pack=True)
        assert plan.meta["packing"] == {"A": "N-shape", "B": "Z-shape"}
        assert plan.pack_cost.bytes_written > 0

    def test_c_offsets_in_bounds(self, registry):
        p = GemmProblem(15, 15, 7, "d", batch=8)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        c_bytes = plan.buffers["C"].group_stride_bytes
        for call in plan.calls:
            for off in call.c_offsets:
                assert 0 <= off < c_bytes

    def test_tile_offsets_cover_pack_buffer(self, registry):
        p = GemmProblem(11, 9, 5, "d", batch=8)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        eb = 2 * 8
        a_stride = plan.buffers["packA"].group_stride_bytes
        assert a_stride == 11 * 5 * eb
        offs = sorted({c.a_off for c in plan.calls})
        assert offs[0] == 0 and offs[-1] < a_stride

    def test_pack_cost_scales_with_batch(self, registry):
        p1 = build_gemm_plan(GemmProblem(8, 8, 8, "d", batch=64),
                             KUNPENG_920, registry)
        p2 = build_gemm_plan(GemmProblem(8, 8, 8, "d", batch=128),
                             KUNPENG_920, registry)
        assert p2.pack_cost.bytes_read == 2 * p1.pack_cost.bytes_read

    def test_complex_uses_complex_tiles(self, registry):
        p = GemmProblem(7, 5, 4, "z", batch=8)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        assert plan.meta["m_tiles"] == [3, 2, 2]
        assert plan.meta["n_tiles"] == [2, 2, 1]

    def test_describe_mentions_kernels(self, registry):
        plan = build_gemm_plan(GemmProblem(4, 4, 4, "d", batch=8),
                               KUNPENG_920, registry)
        text = plan.describe()
        assert "gemm" in text and "packing" in text


class TestTrsmPlan:
    def test_small_problem_single_triangular_call(self, registry):
        p = TrsmProblem(4, 9, "d", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert plan.meta["whole_in_regs"]
        assert len(plan.calls) == 1
        assert plan.calls[0].program.meta["routine"] == "trsm_tri"
        assert plan.calls[0].program.meta["n"] == 9

    def test_small_lnln_nopack(self, registry):
        p = TrsmProblem(5, 7, "d", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert plan.meta["b_nopack"]
        assert plan.calls[0].b_buf == "B"

    def test_alpha_forces_pack(self, registry):
        p = TrsmProblem(5, 7, "d", alpha=2.0, batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert not plan.meta["b_nopack"]

    def test_upper_mode_forces_pack(self, registry):
        p = TrsmProblem(5, 7, "d", uplo="U", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert not plan.meta["b_nopack"]

    def test_ltun_mode_is_nopack_eligible(self, registry):
        """LTUN normalizes without flip or transpose -> fast path."""
        p = TrsmProblem(5, 7, "d", uplo="U", transa="T", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert plan.meta["b_nopack"]

    def test_blocked_structure(self, registry):
        p = TrsmProblem(9, 8, "d", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert not plan.meta["whole_in_regs"]
        assert plan.meta["blocks"] == [4, 3, 2]
        # per column panel: 3 triangular + 3 rect calls; 2 panels
        assert len(plan.calls) == 2 * (3 + 3)
        routines = [c.program.meta["routine"] for c in plan.calls]
        assert routines.count("trsm_tri") == 6
        assert routines.count("trsm_rect") == 6

    def test_blocked_pads_columns(self, registry):
        p = TrsmProblem(9, 5, "d", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert plan.meta["n_pad"] == 8

    def test_rect_kernel_k_matches_source_block(self, registry):
        p = TrsmProblem(9, 4, "d", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        rects = [c for c in plan.calls
                 if c.program.meta["routine"] == "trsm_rect"]
        ks = sorted(c.program.meta["k"] for c in rects)
        # blocks [4,3,2]: updates (1,0) k=4, (2,0) k=4, (2,1) k=3
        assert ks == [3, 4, 4]

    def test_right_side_plans(self, registry):
        p = TrsmProblem(7, 3, "d", side="R", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert plan.meta["norm"].d == 3
        assert not plan.meta["b_nopack"]

    def test_complex_block_sizes(self, registry):
        p = TrsmProblem(5, 4, "z", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        assert plan.meta["blocks"] == [2, 2, 1]

    def test_divisions_counted_in_pack_cost(self, registry):
        p = TrsmProblem(6, 4, "d", batch=8)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        lanes = KUNPENG_920.lanes("d")
        groups = -(-8 // lanes)
        assert plan.pack_cost.div_vectors == 6 * groups
        pu = build_trsm_plan(TrsmProblem(6, 4, "d", diag="U", batch=8),
                             KUNPENG_920, registry)
        assert pu.pack_cost.div_vectors == 0
