"""Pack-selector tests (paper Section 5.2 / Figure 1 middle box)."""

import pytest

from repro.codegen.registry import KernelRegistry
from repro.machine.machines import KUNPENG_920
from repro.runtime.pack_selector import (select_gemm_packing,
                                         select_trsm_packing)
from repro.types import GemmProblem, TrsmProblem


@pytest.fixture(scope="module")
def registry():
    return KernelRegistry(KUNPENG_920, optimize=False)


class TestGemmSelection:
    def test_paper_example_nn_small_m(self):
        """'for GEMM under NN mode, when M does not exceed the size of
        the computing kernel design, matrix A is accessed rows by rows'."""
        p = GemmProblem(4, 8, 8, "d")
        d = select_gemm_packing(p, [4], [4, 4])
        assert not d.pack_a and d.pack_b
        assert d.description == {"A": "no-pack", "B": "Z-shape"}

    def test_transposed_a_always_packs(self):
        p = GemmProblem(4, 8, 8, "d", transa="T")
        d = select_gemm_packing(p, [4], [4, 4])
        assert d.pack_a
        assert "transposed" in d.reason_a

    def test_tall_a_packs(self):
        p = GemmProblem(8, 8, 8, "d")
        d = select_gemm_packing(p, [4, 4], [4, 4])
        assert d.pack_a
        assert "tiles" in d.reason_a

    def test_b_fast_path_requires_transpose(self):
        p = GemmProblem(8, 4, 8, "d", transb="T")
        assert not select_gemm_packing(p, [4, 4], [4]).pack_b
        p2 = GemmProblem(8, 4, 8, "d", transb="N")
        assert select_gemm_packing(p2, [4, 4], [4]).pack_b

    def test_force_pack(self):
        p = GemmProblem(4, 4, 4, "d", transb="T")
        d = select_gemm_packing(p, [4], [4], force_pack=True)
        assert d.pack_a and d.pack_b
        assert d.reason_a == "forced"


class TestTrsmSelection:
    def test_paper_example_lnln(self, registry):
        """'For TRSM under LNLN mode, when M does not exceed the size of
        the computing kernel design, the packing of matrix B can be
        skipped.'"""
        d = select_trsm_packing(TrsmProblem(5, 9, "d"), registry)
        assert d.whole_in_regs and not d.pack_b

    def test_blocked_always_packs(self, registry):
        d = select_trsm_packing(TrsmProblem(9, 9, "d"), registry)
        assert not d.whole_in_regs and d.pack_b
        assert "blocked" in d.reason_b

    def test_flip_modes_pack(self, registry):
        d = select_trsm_packing(TrsmProblem(4, 4, "d", uplo="U"), registry)
        assert d.pack_b
        assert "transform" in d.reason_b

    def test_alpha_packs(self, registry):
        d = select_trsm_packing(TrsmProblem(4, 4, "d", alpha=3.0), registry)
        assert d.pack_b
        assert "alpha" in d.reason_b

    def test_ltun_fast_path(self, registry):
        """LTUN normalizes flip-free: also eligible for no-pack."""
        d = select_trsm_packing(
            TrsmProblem(4, 4, "d", uplo="U", transa="T"), registry)
        assert not d.pack_b

    def test_complex_bound_is_3(self, registry):
        assert select_trsm_packing(TrsmProblem(3, 4, "z"),
                                   registry).whole_in_regs
        assert not select_trsm_packing(TrsmProblem(4, 4, "z"),
                                       registry).whole_in_regs

    def test_descriptions(self, registry):
        d = select_trsm_packing(TrsmProblem(9, 9, "d"), registry)
        assert d.description["A"].startswith("blocked")
        assert d.description["B"] == "panel"
