"""Tests for the free-function compact BLAS API."""

import numpy as np
import pytest

from repro.api import (compact_from_batch, compact_gemm, compact_to_batch,
                       compact_trsm, default_framework)
from repro.machine.machines import KUNPENG_920, XEON_GOLD_6240
from tests.conftest import ALL_DTYPES, random_batch, random_triangular


class TestConversion:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_roundtrip(self, rng, dtype):
        a = random_batch(rng, 7, 4, 5, dtype)
        cb = compact_from_batch(a)
        assert cb.lanes == KUNPENG_920.lanes(dtype)
        assert np.allclose(compact_to_batch(cb), a, atol=1e-6)

    def test_machine_sets_lanes(self, rng):
        a = random_batch(rng, 4, 3, 3, "d")
        assert compact_from_batch(a, XEON_GOLD_6240).lanes == 8


class TestCompactGemm:
    def test_in_place_result(self, rng):
        a = random_batch(rng, 9, 4, 6, "d")
        b = random_batch(rng, 9, 6, 5, "d")
        ca = compact_from_batch(a)
        cb = compact_from_batch(b)
        cc = compact_from_batch(np.zeros((9, 4, 5)))
        out = compact_gemm(ca, cb, cc, beta=0.0)
        assert out is cc
        assert np.abs(compact_to_batch(cc) - a @ b).max() < 1e-9

    def test_transpose_flags(self, rng):
        a = random_batch(rng, 5, 6, 4, "d")    # stored (k, m)
        b = random_batch(rng, 5, 6, 7, "d")
        ca, cb = compact_from_batch(a), compact_from_batch(b)
        cc = compact_from_batch(np.zeros((5, 4, 7)))
        compact_gemm(ca, cb, cc, transa="T", beta=0.0)
        want = a.transpose(0, 2, 1) @ b
        assert np.abs(compact_to_batch(cc) - want).max() < 1e-9

    def test_repeated_calls_share_framework(self, rng):
        fw1 = default_framework()
        fw2 = default_framework()
        assert fw1 is fw2
        assert default_framework(XEON_GOLD_6240) is not fw1


class TestCompactTrsm:
    def test_solve(self, rng):
        a = random_triangular(rng, 6, 5, "d")
        b = random_batch(rng, 6, 5, 3, "d")
        ca, cb = compact_from_batch(a), compact_from_batch(b)
        compact_trsm(ca, cb, alpha=2.0)
        x = compact_to_batch(cb)
        assert np.abs(np.tril(a) @ x - 2.0 * b).max() < 1e-8

    def test_right_upper(self, rng):
        a = random_triangular(rng, 6, 4, "d", uplo="U")
        b = random_batch(rng, 6, 3, 4, "d")
        ca, cb = compact_from_batch(a), compact_from_batch(b)
        compact_trsm(ca, cb, side="R", uplo="U")
        x = compact_to_batch(cb)
        assert np.abs(x @ np.triu(a) - b).max() < 1e-8


class TestBackendSelection:
    def test_frameworks_keyed_per_backend(self):
        default = default_framework()
        interp = default_framework(backend="interpret")
        assert default is not interp
        assert default is default_framework()
        assert interp is default_framework(backend="interpret")
        assert default.backend.name == "compiled"
        assert interp.backend.name == "interpret"

    def test_backends_agree_bit_for_bit(self, rng):
        a = random_batch(rng, 9, 4, 6, "d")
        b = random_batch(rng, 9, 6, 5, "d")
        outs = []
        for backend in ("interpret", "compiled"):
            ca, cb = compact_from_batch(a), compact_from_batch(b)
            cc = compact_from_batch(np.zeros((9, 4, 5)))
            compact_gemm(ca, cb, cc, beta=0.0, backend=backend)
            outs.append(cc.buffer)
        assert np.array_equal(outs[0], outs[1])

    def test_trsm_backend_param(self, rng):
        a = random_triangular(rng, 5, 4, "d")
        b = random_batch(rng, 5, 4, 3, "d")
        outs = []
        for backend in ("interpret", "compiled"):
            ca, cb = compact_from_batch(a), compact_from_batch(b)
            compact_trsm(ca, cb, backend=backend)
            outs.append(cb.buffer)
        assert np.array_equal(outs[0], outs[1])
