"""Register-map tests: the Algorithm 2 / Algorithm 4 register layouts.

The register numbering is a contract between templates, the scheduler
(which reasons about dependences through these registers), and the
paper's budget derivations — pin it directly.
"""

import pytest

from repro.codegen.cmar import register_cost
from repro.codegen.templates_gemm import GemmRegMap
from repro.codegen.templates_trsm import TrsmTriRegMap, tri_index
from repro.errors import RegisterAllocationError
from repro.types import BlasDType


class TestGemmRegMapReal:
    def setup_method(self):
        self.ctx = GemmRegMap(4, 4, BlasDType.D, lanes=2)

    def test_paper_layout(self):
        """Algorithm 2: A in V0..V(2mc-1), B next, C at V(2(mc+nc))."""
        assert self.ctx.a_reg(0, 0) == 0
        assert self.ctx.a_reg(1, 0) == 4          # bank 1 starts at mc
        assert self.ctx.b_base == 8
        assert self.ctx.b_reg(0, 0) == 8
        assert self.ctx.b_reg(1, 3) == 15
        assert self.ctx.c_base == 16
        assert self.ctx.c_reg(0, 0) == 16
        assert self.ctx.c_reg(3, 3) == 31         # the last register

    def test_c_is_column_major(self):
        """Figure 5's v16 = C(0,0), v17 = C(1,0) ordering."""
        assert self.ctx.c_reg(1, 0) == 17
        assert self.ctx.c_reg(0, 1) == 20

    def test_all_registers_distinct_and_bounded(self):
        regs = ([self.ctx.a_reg(b, i) for b in (0, 1) for i in range(4)]
                + [self.ctx.b_reg(b, j) for b in (0, 1) for j in range(4)]
                + [self.ctx.c_reg(i, j) for i in range(4) for j in range(4)])
        assert len(set(regs)) == 32
        assert max(regs) == 31

    def test_budget_matches_cmar_accounting(self):
        for mc, nc in [(4, 4), (3, 2), (1, 4), (2, 2)]:
            ctx = GemmRegMap(mc, nc, BlasDType.D, lanes=2)
            used = ctx.c_base + mc * nc
            assert used == register_cost(mc, nc, "d")

    def test_overflow_raises(self):
        with pytest.raises(RegisterAllocationError):
            GemmRegMap(5, 5, BlasDType.D, lanes=2)


class TestGemmRegMapComplex:
    def setup_method(self):
        self.ctx = GemmRegMap(3, 2, BlasDType.Z, lanes=2)

    def test_exactly_32_registers(self):
        """Paper: 4mc + 4nc + 2mc*nc = 12 + 8 + 12 = 32."""
        assert self.ctx.c_base + 2 * 3 * 2 == 32

    def test_planes_adjacent(self):
        """Element re/im in consecutive registers (an LDP fills both)."""
        assert self.ctx.a_reg(0, 0, 1) == self.ctx.a_reg(0, 0, 0) + 1
        assert self.ctx.c_reg(2, 1, 1) == self.ctx.c_reg(2, 1, 0) + 1

    def test_bank_regs_grouped_by_element(self):
        regs = self.ctx.a_bank_regs(0)
        assert regs == [0, 1, 2, 3, 4, 5]       # (re, im) per element

    def test_complex_overflow(self):
        with pytest.raises(RegisterAllocationError):
            GemmRegMap(3, 3, BlasDType.Z, lanes=2)


class TestTrsmTriRegMap:
    def test_tri_index_row_major(self):
        assert tri_index(0, 0) == 0
        assert tri_index(1, 0) == 1
        assert tri_index(1, 1) == 2
        assert tri_index(4, 4) == 14

    def test_real_m5_budget(self):
        """Paper: 2M + M(M+1)/2 = 10 + 15 = 25 registers at M=5."""
        ctx = TrsmTriRegMap(5, BlasDType.D, lanes=2)
        assert ctx.a_base == 10
        assert ctx.a_reg(4, 4) == 10 + 14
        regs = ([ctx.b_reg(b, i) for b in (0, 1) for i in range(5)]
                + [ctx.a_reg(i, j) for i in range(5) for j in range(i + 1)])
        assert len(set(regs)) == 25
        assert max(regs) < 32

    def test_complex_m3_with_temp(self):
        ctx = TrsmTriRegMap(3, BlasDType.Z, lanes=2)
        assert ctx.a_base == 12
        assert ctx.temp_reg == 12 + 12
        assert ctx.temp_reg < 32

    def test_m6_overflow(self):
        with pytest.raises(RegisterAllocationError):
            TrsmTriRegMap(6, BlasDType.D, lanes=2)
        with pytest.raises(RegisterAllocationError):
            TrsmTriRegMap(4, BlasDType.Z, lanes=2)
