"""Functional correctness of TRSM triangular and rectangular kernels."""

import numpy as np
import pytest
import scipy.linalg

from repro.codegen.cmar import max_triangular_order
from repro.codegen.generator_trsm import (generate_trsm_rect,
                                          generate_trsm_triangular)
from repro.errors import CodegenError
from repro.machine import KUNPENG_920, MemorySpace, VectorExecutor
from repro.machine.isa import Op
from repro.types import BlasDType
from tests.conftest import random_batch, random_triangular, tolerance


def pack_triangle(a, lanes, ncomp, unit=False):
    batch, m, _ = a.shape
    groups = batch // lanes
    idx = [(i, j) for i in range(m) for j in range(i + 1)]
    real = np.float32 if a.real.dtype == np.float32 else np.float64
    out = np.zeros((groups, len(idx), ncomp, lanes), dtype=real)
    ar = a.reshape(groups, lanes, m, m)
    for t, (i, j) in enumerate(idx):
        v = ar[:, :, i, j]
        if i == j and not unit:
            v = 1.0 / v
        out[:, t, 0, :] = v.real
        if ncomp == 2:
            out[:, t, 1, :] = v.imag
    return np.ascontiguousarray(out).reshape(-1)


def pack_colmajor(b, lanes, ncomp):
    batch, m, n = b.shape
    groups = batch // lanes
    g = b.reshape(groups, lanes, m, n)
    if ncomp == 2:
        planes = np.stack([g.real, g.imag], axis=2)
        out = planes.transpose(0, 4, 3, 2, 1)
    else:
        out = g.transpose(0, 3, 2, 1)
    # .copy(): for degenerate shapes the transpose is already contiguous
    # and ascontiguousarray would alias the input, which the in-place
    # solve then overwrites
    return out.copy().reshape(-1)


def unpack_colmajor(buf, groups, lanes, m, n, ncomp, dtype):
    out = buf.reshape(groups, n, m, ncomp, lanes)
    if ncomp == 2:
        full = (out[:, :, :, 0, :] + 1j * out[:, :, :, 1, :])
    else:
        full = out[:, :, :, 0, :]
    return full.transpose(0, 3, 2, 1).reshape(groups * lanes, m, n) \
        .astype(dtype)


class TestTriangularKernels:
    @pytest.mark.parametrize("dt", ["s", "d", "c", "z"])
    @pytest.mark.parametrize("n", [1, 3, 6])
    @pytest.mark.parametrize("unit", [False, True])
    def test_all_orders(self, rng, dt, n, unit):
        bdt = BlasDType.from_any(dt)
        machine = KUNPENG_920
        lanes = machine.lanes(bdt)
        ncomp = 2 if bdt.is_complex else 1
        for m in range(1, max_triangular_order(bdt) + 1):
            groups = 2
            batch = groups * lanes
            a = random_triangular(rng, batch, m, dt)
            b = random_batch(rng, batch, m, n, dt)
            pa = pack_triangle(a, lanes, ncomp, unit)
            pb = pack_colmajor(b, lanes, ncomp)
            mem = MemorySpace()
            mem.bind("pA", pa)
            mem.bind("pB", pb)
            prog = generate_trsm_triangular(m, n, bdt, machine,
                                            unit_diag=unit)
            ex = VectorExecutor(mem, groups=groups)
            isz = bdt.real_itemsize
            ga = np.arange(groups, dtype=np.int64)
            tri = m * (m + 1) // 2
            ex.set_pointer(0, "pA", ga * tri * ncomp * lanes * isz)
            boff = ga * (m * n * ncomp * lanes * isz)
            ex.set_pointer(1, "pB", boff)
            ex.set_pointer(6, "pB", boff)
            ex.run(prog)
            x = unpack_colmajor(pb, groups, lanes, m, n, ncomp, bdt.np_dtype)
            for i in range(batch):
                want = scipy.linalg.solve_triangular(
                    a[i], b[i], lower=True, unit_diagonal=unit)
                assert np.abs(x[i] - want).max() < tolerance(dt), (dt, m, n)

    def test_order_beyond_bound_rejected(self):
        with pytest.raises(CodegenError):
            generate_trsm_triangular(6, 4, "d", KUNPENG_920)
        with pytest.raises(CodegenError):
            generate_trsm_triangular(4, 2, "z", KUNPENG_920)

    def test_bad_panel_width_rejected(self):
        with pytest.raises(CodegenError):
            generate_trsm_triangular(3, 0, "d", KUNPENG_920)

    def test_division_free(self):
        """The kernel multiplies by the pre-reciprocated diagonal."""
        prog = generate_trsm_triangular(5, 8, "d", KUNPENG_920)
        assert prog.count(Op.FDIV) == 0

    def test_unit_diag_skips_diagonal_multiply(self):
        n = 4
        nonunit = generate_trsm_triangular(4, n, "d", KUNPENG_920)
        unit = generate_trsm_triangular(4, n, "d", KUNPENG_920,
                                        unit_diag=True)
        assert nonunit.count(Op.FMUL) - unit.count(Op.FMUL) == 4 * n


class TestRectKernels:
    @pytest.mark.parametrize("dt", ["s", "d", "c", "z"])
    def test_fmls_update(self, rng, dt):
        bdt = BlasDType.from_any(dt)
        machine = KUNPENG_920
        lanes = machine.lanes(bdt)
        ncomp = 2 if bdt.is_complex else 1
        sizes = ([(4, 4), (3, 4), (1, 4)] if not bdt.is_complex
                 else [(2, 2), (1, 2)])
        ks = [1, 2, 3, 4] if not bdt.is_complex else [1, 2]
        for mc, nc in sizes:
            for k in ks:
                groups = 2
                batch = groups * lanes
                l_blk = random_batch(rng, batch, mc, k, dt)
                x_pan = random_batch(rng, batch, k, nc, dt)
                b0 = random_batch(rng, batch, mc, nc, dt)
                # L block in GEMM-A stream layout ([k][i])
                g = l_blk.reshape(groups, lanes, mc, k)
                if ncomp == 2:
                    planes = np.stack([g.real, g.imag], axis=2)
                    pl = np.ascontiguousarray(
                        planes.transpose(0, 4, 3, 2, 1)).reshape(-1)
                else:
                    pl = np.ascontiguousarray(
                        g.transpose(0, 3, 2, 1)).reshape(-1)
                pl = pl.astype(bdt.real_dtype)
                px = pack_colmajor(x_pan, lanes, ncomp)
                pb = pack_colmajor(b0, lanes, ncomp)
                mem = MemorySpace()
                mem.bind("pL", pl)
                mem.bind("pX", px)
                mem.bind("pB", pb)
                isz = bdt.real_itemsize
                vb = lanes * isz
                xcs = k * ncomp * vb
                prog = generate_trsm_rect(mc, nc, k, bdt, machine, xcs)
                ex = VectorExecutor(mem, groups=groups)
                ga = np.arange(groups, dtype=np.int64)
                ex.set_pointer(0, "pL", ga * (mc * k * ncomp * vb))
                ex.set_pointer(1, "pX", ga * (k * nc * ncomp * vb))
                for j in range(nc):
                    ex.set_pointer(2 + j, "pB",
                                   ga * (mc * nc * ncomp * vb)
                                   + j * mc * ncomp * vb)
                ex.run(prog)
                got = unpack_colmajor(pb, groups, lanes, mc, nc, ncomp,
                                      bdt.np_dtype)
                wide = np.complex128 if ncomp == 2 else np.float64
                want = b0 - l_blk.astype(wide) @ x_pan.astype(wide)
                assert np.abs(got - want).max() < tolerance(dt), (dt, mc,
                                                                  nc, k)

    def test_uses_fmls_not_fmla_for_real(self):
        """Eq. 4: the rectangular kernel is FMLS-based, saving the M*N
        extra multiplies a plain GEMM call would spend."""
        prog = generate_trsm_rect(4, 4, 4, "d", KUNPENG_920, 64)
        assert prog.count(Op.FMLS) == 4 * 4 * 4
        assert prog.count(Op.FMLA) == 0
        assert prog.count(Op.FMUL) == 0

    def test_bad_sizes_rejected(self):
        with pytest.raises(CodegenError):
            generate_trsm_rect(0, 4, 1, "d", KUNPENG_920, 64)
