"""Static kernel-validator tests."""

import pytest

from repro.codegen.generator_gemm import generate_gemm_kernel
from repro.codegen.generator_trsm import (generate_trsm_rect,
                                          generate_trsm_triangular)
from repro.codegen.validate import assert_valid, validate_kernel
from repro.errors import CodegenError
from repro.machine.isa import addi, fmai, fmla, fmul, ldrv, strv, vzero
from repro.machine.machines import KUNPENG_920
from repro.machine.program import Program


class TestValidKernels:
    def test_generated_gemm_kernels_pass(self):
        for mc, nc, k in [(4, 4, 1), (4, 4, 16), (1, 1, 3), (3, 2, 5)]:
            prog = generate_gemm_kernel(mc, nc, k, "d", KUNPENG_920)
            assert validate_kernel(prog, KUNPENG_920) == []

    def test_generated_trsm_kernels_pass(self):
        assert validate_kernel(
            generate_trsm_triangular(5, 4, "d", KUNPENG_920),
            KUNPENG_920) == []
        assert validate_kernel(
            generate_trsm_rect(4, 4, 3, "d", KUNPENG_920, 64),
            KUNPENG_920) == []

    def test_complex_kernels_pass(self):
        prog = generate_gemm_kernel(3, 2, 7, "z", KUNPENG_920,
                                    alpha=1 + 1j, beta=0.5 - 1j)
        assert validate_kernel(prog, KUNPENG_920) == []


class TestDefects:
    def test_read_before_write(self):
        prog = Program("bad", [fmul(0, 1, 2, ew=8)], ew=8, lanes=2)
        issues = validate_kernel(prog, KUNPENG_920)
        assert any("read before" in i for i in issues)

    def test_fma_accumulator_counts_as_read(self):
        prog = Program("bad", [ldrv(1, 0, 0), ldrv(2, 0, 16),
                               fmla(0, 1, 2, ew=8)], ew=8, lanes=2)
        issues = validate_kernel(prog, KUNPENG_920)
        assert any("v0 read before" in i for i in issues)

    def test_unknown_pointer(self):
        prog = Program("bad", [ldrv(0, 20, 0)], ew=8, lanes=2)
        issues = validate_kernel(prog, KUNPENG_920)
        assert any("unknown" in i for i in issues)

    def test_addi_extends_known_pointers(self):
        prog = Program("ok", [addi(20, 0, 64), ldrv(0, 20, 0)],
                       ew=8, lanes=2)
        assert validate_kernel(prog, KUNPENG_920) == []

    def test_nonfinite_immediate(self):
        prog = Program("bad", [vzero(0), fmai(0, 0, float("nan"), ew=8)],
                       ew=8, lanes=2)
        issues = validate_kernel(prog, KUNPENG_920)
        assert any("non-finite" in i for i in issues)

    def test_assert_valid_raises(self):
        prog = Program("bad", [strv(0, 0, 0)], ew=8, lanes=2)
        with pytest.raises(CodegenError, match="bad"):
            assert_valid(prog, KUNPENG_920)

    def test_assert_valid_passthrough(self):
        prog = Program("ok", [vzero(0), strv(0, 0, 0)], ew=8, lanes=2)
        assert assert_valid(prog, KUNPENG_920) is prog
