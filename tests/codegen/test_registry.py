"""Kernel-registry tests: Table 1 fidelity, caching, install sweep."""

import pytest

from repro.codegen.registry import KernelRegistry, table1_inventory
from repro.machine.machines import KUNPENG_920, XEON_GOLD_6240


class TestTable1:
    def test_real_gemm_family_complete(self):
        """Table 1: main 4x4 plus every edge in {1..4}x{1..4}."""
        inv = table1_inventory()
        fam = inv["sgemm/dgemm"]
        all_sizes = set(fam["main"]) | set(fam["edge"])
        assert all_sizes == {(m, n) for m in range(1, 5)
                             for n in range(1, 5)}
        assert fam["main"] == [(4, 4)]

    def test_complex_gemm_family_complete(self):
        inv = table1_inventory()
        fam = inv["cgemm/zgemm"]
        all_sizes = set(fam["main"]) | set(fam["edge"])
        assert all_sizes == {(m, n) for m in range(1, 4)
                             for n in range(1, 3)}
        assert fam["main"] == [(3, 2)]

    def test_real_trsm_rect_family(self):
        fam = table1_inventory()["strsm/dtrsm"]
        assert fam["main"] == [(4, 4)]
        assert fam["edge"] == [(3, 4), (2, 4), (1, 4)]
        assert fam["tri"] == [(m, m) for m in range(1, 6)]

    def test_complex_trsm_family(self):
        fam = table1_inventory()["ctrsm/ztrsm"]
        assert fam["main"] == [(2, 2)]
        assert fam["edge"] == [(1, 2)]
        assert fam["tri"] == [(m, m) for m in range(1, 4)]


class TestRegistry:
    def test_caching_returns_same_object(self):
        reg = KernelRegistry(KUNPENG_920)
        a = reg.gemm_kernel(4, 4, 8, "d")
        b = reg.gemm_kernel(4, 4, 8, "d")
        assert a is b

    def test_distinct_keys_distinct_kernels(self):
        reg = KernelRegistry(KUNPENG_920)
        a = reg.gemm_kernel(4, 4, 8, "d")
        assert reg.gemm_kernel(4, 4, 8, "s") is not a
        assert reg.gemm_kernel(4, 4, 9, "d") is not a
        assert reg.gemm_kernel(4, 4, 8, "d", alpha=2.0) is not a
        assert len(reg) == 4

    def test_optimize_flag(self):
        opt = KernelRegistry(KUNPENG_920, optimize=True)
        raw = KernelRegistry(KUNPENG_920, optimize=False)
        assert opt.gemm_kernel(4, 4, 8, "d").meta.get("scheduled") == "opt"
        assert "scheduled" not in raw.gemm_kernel(4, 4, 8, "d").meta

    def test_main_kernel_sizes(self):
        reg = KernelRegistry(KUNPENG_920)
        assert reg.main_gemm_kernel("d") == (4, 4)
        assert reg.main_gemm_kernel("z") == (3, 2)

    def test_trsm_parameters(self):
        reg = KernelRegistry(KUNPENG_920)
        assert reg.max_tri("d") == 5
        assert reg.max_tri("c") == 3
        assert reg.trsm_panel_width("d") == 4
        assert reg.trsm_panel_width("z") == 2
        assert reg.trsm_block_main("s") == 4
        assert reg.trsm_block_main("c") == 2

    def test_trsm_kernels_generate(self):
        reg = KernelRegistry(KUNPENG_920)
        assert len(reg.trsm_triangular(5, 4, "d")) > 0
        assert len(reg.trsm_rect(4, 4, 3, "d", 64)) > 0

    def test_install_covers_table1(self):
        reg = KernelRegistry(KUNPENG_920, optimize=False)
        count = reg.install(dtypes=("d",), k_values=(4,))
        # 16 gemm sizes + 5 triangular + 4 rect sizes x 4 k-depths
        assert count == 16 + 5 + 16
        # installing again adds nothing
        assert reg.install(dtypes=("d",), k_values=(4,)) == count

    def test_works_on_xeon(self):
        reg = KernelRegistry(XEON_GOLD_6240)
        prog = reg.gemm_kernel(4, 4, 8, "d")
        assert prog.lanes == 8      # 512-bit / 8B


def test_report_lists_kernels():
    reg = KernelRegistry(KUNPENG_920)
    reg.gemm_kernel(4, 4, 8, "d")
    reg.trsm_triangular(3, 4, "s")
    text = reg.report()
    assert "dgemm_4x4_k8" in text
    assert "strsm_tri_3x4" in text
    assert "fp/mem" in text
    assert "2 kernels" in text
