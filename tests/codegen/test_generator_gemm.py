"""Functional correctness of generated compact-GEMM kernels.

Each kernel is executed on the simulated machine against packed operand
panels and compared with NumPy — across dtypes, kernel sizes, K depths,
alpha/beta combinations, and batch padding.
"""

import numpy as np
import pytest

from repro.codegen.generator_gemm import generate_gemm_kernel
from repro.errors import CodegenError, RegisterAllocationError
from repro.layout import CompactBatch
from repro.machine import KUNPENG_920, MemorySpace, VectorExecutor
from repro.machine.isa import Op
from repro.types import BlasDType
from tests.conftest import NP_DTYPES, random_batch, tolerance


def pack_a_panel(op_a, lanes, ncomp):
    """(G*P, mc, K) -> per-group [k][i][comp][lane] stream order."""
    batch, mc, k = op_a.shape
    g = op_a.reshape(batch // lanes, lanes, mc, k)
    if ncomp == 2:
        planes = np.stack([g.real, g.imag], axis=2)
        out = planes.transpose(0, 4, 3, 2, 1)
    else:
        out = g.transpose(0, 3, 2, 1)
    return np.ascontiguousarray(out).reshape(-1)


def pack_b_panel(op_b, lanes, ncomp):
    batch, k, nc = op_b.shape
    g = op_b.reshape(batch // lanes, lanes, k, nc)
    if ncomp == 2:
        planes = np.stack([g.real, g.imag], axis=2)
        out = planes.transpose(0, 3, 4, 2, 1)
    else:
        out = g.transpose(0, 2, 3, 1)
    return np.ascontiguousarray(out).reshape(-1)


def run_kernel(rng, dt, mc, nc, k, alpha, beta, batch=None):
    machine = KUNPENG_920
    bdt = BlasDType.from_any(dt)
    lanes = machine.lanes(bdt)
    ncomp = 2 if bdt.is_complex else 1
    batch = batch if batch is not None else 2 * lanes + 1
    a = random_batch(rng, batch, mc, k, dt)
    b = random_batch(rng, batch, k, nc, dt)
    c0 = random_batch(rng, batch, mc, nc, dt)
    cc = CompactBatch.from_matrices(c0, lanes)
    groups = cc.groups

    def pad(x):
        out = np.zeros((groups * lanes,) + x.shape[1:], dtype=x.dtype)
        out[:batch] = x
        return out

    pa = pack_a_panel(pad(a), lanes, ncomp).astype(bdt.real_dtype)
    pb = pack_b_panel(pad(b), lanes, ncomp).astype(bdt.real_dtype)
    mem = MemorySpace()
    mem.bind("pA", pa)
    mem.bind("pB", pb)
    mem.bind("C", cc.buffer)
    prog = generate_gemm_kernel(mc, nc, k, bdt, machine, alpha, beta)
    ex = VectorExecutor(mem, groups=groups)
    ga = np.arange(groups, dtype=np.int64)
    isz = bdt.real_itemsize
    ex.set_pointer(0, "pA", ga * (mc * k * ncomp * lanes * isz))
    ex.set_pointer(1, "pB", ga * (nc * k * ncomp * lanes * isz))
    for j in range(nc):
        ex.set_pointer(2 + j, "C",
                       cc.group_base_offsets() + cc.element_offset(0, j))
    ex.run(prog)
    got = cc.to_matrices()
    acc = a.astype(np.complex128 if ncomp == 2 else np.float64) @ \
        b.astype(np.complex128 if ncomp == 2 else np.float64)
    want = alpha * acc + beta * c0
    return got, want


REAL_SIZES = [(4, 4), (4, 1), (3, 4), (2, 3), (1, 1), (1, 4)]
CPLX_SIZES = [(3, 2), (3, 1), (2, 2), (1, 2), (1, 1)]


class TestRealKernels:
    @pytest.mark.parametrize("dt", ["s", "d"])
    @pytest.mark.parametrize("mc,nc", REAL_SIZES)
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 8])
    def test_sizes_and_depths(self, rng, dt, mc, nc, k):
        got, want = run_kernel(rng, dt, mc, nc, k, 1.0, 1.0)
        assert np.abs(got - want).max() < tolerance(dt)

    @pytest.mark.parametrize("k", [16, 33])
    def test_deep_k(self, rng, k):
        got, want = run_kernel(rng, "d", 4, 4, k, 1.0, 1.0)
        assert np.abs(got - want).max() < 1e-9

    @pytest.mark.parametrize("alpha,beta", [
        (1.0, 0.0), (1.0, 1.0), (2.5, 0.0), (2.5, 1.0), (1.5, -0.5),
        (0.0, 2.0),
    ])
    def test_alpha_beta(self, rng, alpha, beta):
        got, want = run_kernel(rng, "d", 4, 4, 6, alpha, beta)
        assert np.abs(got - want).max() < 1e-9


class TestComplexKernels:
    @pytest.mark.parametrize("dt", ["c", "z"])
    @pytest.mark.parametrize("mc,nc", CPLX_SIZES)
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 7])
    def test_sizes_and_depths(self, rng, dt, mc, nc, k):
        got, want = run_kernel(rng, dt, mc, nc, k, 1.0, 1.0)
        assert np.abs(got - want).max() < tolerance(dt)

    @pytest.mark.parametrize("alpha,beta", [
        (1.0, 0.0), (1 + 1j, 0.0), (1 + 1j, 1.0), (2.0, 0.5 - 1j),
        (1.5 - 0.5j, 0.25 + 1j),
    ])
    def test_complex_alpha_beta(self, rng, alpha, beta):
        got, want = run_kernel(rng, "z", 3, 2, 4, alpha, beta)
        assert np.abs(got - want).max() < 1e-9


class TestStructure:
    def test_madds_count(self):
        prog = generate_gemm_kernel(4, 4, 10, "d", KUNPENG_920)
        assert prog.count(Op.FMLA) + prog.count(Op.FMUL) == 4 * 4 * 10

    def test_complex_fp_op_count(self):
        """Complex kernels do 4 real FP ops per complex madd (Eq. 3)."""
        prog = generate_gemm_kernel(3, 2, 5, "z", KUNPENG_920,
                                    alpha=1.0, beta=0.0)
        fp_madds = (prog.count(Op.FMLA) + prog.count(Op.FMLS)
                    + prog.count(Op.FMUL))
        assert fp_madds == 4 * 3 * 2 * 5

    def test_a_bytes_consumed_matches_panel(self):
        """Pointer bumps over PA must walk exactly the packed panel."""
        prog = generate_gemm_kernel(4, 3, 9, "d", KUNPENG_920)
        bump = sum(i.ximm for i in prog.instrs
                   if i.op is Op.ADDI and i.xdst == 0)
        assert bump == prog.meta["a_panel_bytes"]

    def test_b_bytes_consumed_matches_panel(self):
        prog = generate_gemm_kernel(4, 3, 9, "d", KUNPENG_920)
        bump = sum(i.ximm for i in prog.instrs
                   if i.op is Op.ADDI and i.xdst == 1)
        assert bump == prog.meta["b_panel_bytes"]

    def test_prefetches_c_columns(self):
        prog = generate_gemm_kernel(4, 4, 8, "d", KUNPENG_920)
        assert prog.count(Op.PRFM) == 4
        prog = generate_gemm_kernel(4, 4, 8, "d", KUNPENG_920,
                                    prefetch_c=False)
        assert prog.count(Op.PRFM) == 0

    def test_register_budget_respected(self):
        for mc, nc in REAL_SIZES:
            prog = generate_gemm_kernel(mc, nc, 4, "d", KUNPENG_920)
            assert prog.max_vreg < 32

    def test_ping_pong_templates_present(self):
        prog = generate_gemm_kernel(4, 4, 8, "d", KUNPENG_920)
        tags = {i.tag for i in prog.instrs}
        assert {"I", "M1", "M2", "E", "SAVE"} <= tags

    def test_k1_uses_zero_and_sub(self):
        prog = generate_gemm_kernel(4, 4, 1, "d", KUNPENG_920)
        tags = {i.tag for i in prog.instrs}
        assert "ZERO" in tags and "SUB" in tags
        assert prog.count(Op.VZERO) == 16

    def test_k3_path(self):
        prog = generate_gemm_kernel(2, 2, 3, "d", KUNPENG_920)
        tags = [i.tag for i in prog.instrs]
        assert "I" in tags and "E" in tags and "SUB" in tags


class TestErrors:
    def test_oversized_kernel_rejected(self):
        with pytest.raises(RegisterAllocationError):
            generate_gemm_kernel(5, 5, 4, "d", KUNPENG_920)

    def test_bad_size_rejected(self):
        with pytest.raises(CodegenError):
            generate_gemm_kernel(0, 1, 1, "d", KUNPENG_920)
        with pytest.raises(CodegenError):
            generate_gemm_kernel(1, 1, 0, "d", KUNPENG_920)
