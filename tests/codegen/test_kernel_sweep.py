"""Exhaustive kernel sweep: every Table 1 kernel size at every K path.

The generator's Algorithm 3 branches on K (1 / 2 / 3 / even >= 4 /
odd >= 5), and every (mc, nc) pair allocates registers differently, so
this module runs the *complete* install-time inventory functionally
against NumPy.  It is the closest thing to running the paper's whole
kernel library through a conformance suite.
"""

import numpy as np
import pytest

from repro.codegen.registry import table1_inventory
from repro.machine.machines import KUNPENG_920
from tests.codegen.test_generator_gemm import run_kernel
from tests.conftest import tolerance

K_PATHS = (1, 2, 3, 4, 5, 6, 7, 10, 33)

_inv = table1_inventory()
REAL_SIZES = _inv["sgemm/dgemm"]["main"] + _inv["sgemm/dgemm"]["edge"]
CPLX_SIZES = _inv["cgemm/zgemm"]["main"] + _inv["cgemm/zgemm"]["edge"]


@pytest.mark.parametrize("k", K_PATHS)
@pytest.mark.parametrize("mc,nc", REAL_SIZES,
                         ids=[f"{m}x{n}" for m, n in REAL_SIZES])
@pytest.mark.parametrize("dt", ["s", "d"])
def test_real_gemm_inventory(rng, dt, mc, nc, k):
    got, want = run_kernel(rng, dt, mc, nc, k, 1.0, 1.0)
    scale = max(1.0, np.abs(want).max())
    assert np.abs(got - want).max() < tolerance(dt) * scale


@pytest.mark.parametrize("k", K_PATHS)
@pytest.mark.parametrize("mc,nc", CPLX_SIZES,
                         ids=[f"{m}x{n}" for m, n in CPLX_SIZES])
@pytest.mark.parametrize("dt", ["c", "z"])
def test_complex_gemm_inventory(rng, dt, mc, nc, k):
    got, want = run_kernel(rng, dt, mc, nc, k, 1.0, 1.0)
    scale = max(1.0, np.abs(want).max())
    assert np.abs(got - want).max() < tolerance(dt) * scale


def test_inventory_generates_and_validates_everywhere():
    """The full install() sweep must produce valid scheduled kernels on
    both machine models (validation runs inside the registry)."""
    from repro.codegen.registry import KernelRegistry
    from repro.machine.machines import XEON_GOLD_6240
    for machine in (KUNPENG_920, XEON_GOLD_6240):
        reg = KernelRegistry(machine)
        count = reg.install(dtypes=("s", "z"), k_values=(3, 8))
        assert count > 40
