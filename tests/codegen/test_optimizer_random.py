"""Property-based scheduler verification on randomized programs.

The list scheduler may only reorder; it must never change results.  We
generate arbitrary straight-line programs over a small register file —
loads, stores, FMAs, pointer bumps, register moves — execute original
and scheduled versions on identical memory images, and demand bitwise
equality of all memory.  This exercises every dependence class the DAG
builder models: RAW/WAR/WAW on vector registers, pointer-register
chains through ADDI, and store/load ordering through aliased pointers.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.optimizer import schedule_program
from repro.machine import KUNPENG_920, MemorySpace, VectorExecutor
from repro.machine.isa import (addi, fadd, fmla, fmls, fmul, fmuli, ldrv,
                               strv, vmov, vzero)
from repro.machine.program import Program

N_VREGS = 8          # small register file -> dense dependences
N_BUF_ELEMS = 32     # elements in the shared buffer
LANES = 2
EW = 8


@st.composite
def random_instr(draw, initialized: set[int]):
    """One random instruction whose sources are already initialized."""
    choices = ["load", "zero"]
    if initialized:
        choices += ["store", "mov", "muli"]
    if len(initialized) >= 2:
        choices += ["fmla", "fmls", "fmul", "fadd"]
    kind = draw(st.sampled_from(choices))
    dst = draw(st.integers(0, N_VREGS - 1))
    off = draw(st.integers(0, (N_BUF_ELEMS - LANES) // LANES)) * LANES * EW
    if kind == "load":
        ins = ldrv(dst, 0, off, ew=EW)
    elif kind == "zero":
        ins = vzero(dst, ew=EW)
    elif kind == "store":
        src = draw(st.sampled_from(sorted(initialized)))
        return strv(src, 0, off, ew=EW)
    elif kind == "mov":
        src = draw(st.sampled_from(sorted(initialized)))
        ins = vmov(dst, src, ew=EW)
    elif kind == "muli":
        src = draw(st.sampled_from(sorted(initialized)))
        ins = fmuli(dst, src, draw(st.floats(-2, 2)), ew=EW)
    else:
        srcs = sorted(initialized)
        a = draw(st.sampled_from(srcs))
        b = draw(st.sampled_from(srcs))
        op = {"fmla": fmla, "fmls": fmls, "fmul": fmul, "fadd": fadd}[kind]
        if op in (fmla, fmls) and dst not in initialized:
            # accumulators read their destination; make it a fresh def
            ins = fmul(dst, a, b, ew=EW)
        else:
            ins = op(dst, a, b, ew=EW)
    initialized.add(ins.dst[0])
    return ins


@st.composite
def random_program(draw):
    initialized: set[int] = set()
    n = draw(st.integers(3, 40))
    instrs = []
    for _ in range(n):
        instrs.append(draw(random_instr(initialized)))
    # a couple of pointer bumps through a second register to stress the
    # scalar-register dependence tracking
    if draw(st.booleans()):
        instrs.insert(draw(st.integers(0, len(instrs))), addi(0, 0, 0))
    return Program("rand", instrs, ew=EW, lanes=LANES)


def run(program: Program, image: np.ndarray) -> np.ndarray:
    mem = MemorySpace()
    buf = mem.alloc("m", N_BUF_ELEMS, EW)
    buf[:] = image
    ex = VectorExecutor(mem, groups=1)
    ex.set_pointer(0, "m", 0)
    ex.run(program)
    return buf.copy()


@settings(max_examples=120, deadline=None)
@given(prog=random_program(), seed=st.integers(0, 2**16))
def test_scheduling_preserves_any_program(prog, seed):
    rng = np.random.default_rng(seed)
    image = rng.standard_normal(N_BUF_ELEMS)
    scheduled = schedule_program(prog, KUNPENG_920)
    assert len(scheduled) == len(prog)
    out_a = run(prog, image)
    out_b = run(scheduled, image)
    assert np.array_equal(out_a, out_b)


@settings(max_examples=60, deadline=None)
@given(prog=random_program(), seed=st.integers(0, 2**16))
def test_dependence_only_mode_preserves_too(prog, seed):
    rng = np.random.default_rng(seed)
    image = rng.standard_normal(N_BUF_ELEMS)
    scheduled = schedule_program(prog, KUNPENG_920, resource_aware=False)
    assert np.array_equal(run(prog, image), run(scheduled, image))
