"""Tile-decomposition tests (Figure 4's edge-avoidance policy)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codegen.tiling import decompose_dim, tile_starts


class TestMain4:
    def test_paper_example_15(self):
        """Figure 4(b): 15 decomposes as 4+4+4+3, not 4+4+4+2+1."""
        assert decompose_dim(15, 4) == [4, 4, 4, 3]

    @pytest.mark.parametrize("d,expect", [
        (1, [1]), (2, [2]), (3, [3]), (4, [4]), (5, [3, 2]),
        (6, [3, 3]), (7, [4, 3]), (8, [4, 4]), (9, [4, 3, 2]),
        (10, [4, 3, 3]), (11, [4, 4, 3]), (12, [4, 4, 4]),
        (33, [4] * 7 + [3, 2]),
    ])
    def test_known_decompositions(self, d, expect):
        assert decompose_dim(d, 4) == expect

    def test_no_unit_tiles_above_2(self):
        for d in range(3, 100):
            assert 1 not in decompose_dim(d, 4), d


class TestMain3:
    @pytest.mark.parametrize("d,expect", [
        (1, [1]), (2, [2]), (3, [3]), (4, [2, 2]), (5, [3, 2]),
        (6, [3, 3]), (7, [3, 2, 2]), (8, [3, 3, 2]),
    ])
    def test_known(self, d, expect):
        assert decompose_dim(d, 3) == expect

    def test_no_unit_tiles_above_1(self):
        for d in range(2, 60):
            assert 1 not in decompose_dim(d, 3), d


class TestMain2:
    @pytest.mark.parametrize("d,expect", [
        (1, [1]), (2, [2]), (3, [2, 1]), (6, [2, 2, 2]), (7, [2, 2, 2, 1]),
    ])
    def test_known(self, d, expect):
        assert decompose_dim(d, 2) == expect


class TestValidation:
    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            decompose_dim(0, 4)

    def test_rejects_bad_main(self):
        with pytest.raises(ValueError):
            decompose_dim(4, 5)


def test_tile_starts():
    assert tile_starts([4, 4, 3]) == [0, 4, 8]
    assert tile_starts([]) == []


@given(d=st.integers(1, 200), main=st.sampled_from([2, 3, 4]))
def test_property_cover_and_bounds(d, main):
    """Tiles always cover the dimension exactly with sizes in 1..main,
    sorted descending (main kernels run first)."""
    tiles = decompose_dim(d, main)
    assert sum(tiles) == d
    assert all(1 <= t <= main for t in tiles)
    assert tiles == sorted(tiles, reverse=True)
