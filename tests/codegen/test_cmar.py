"""CMAR analysis tests (paper Eqs. 2-3 and the Section 4.2 derivations)."""

import pytest

from repro.codegen.cmar import (cmar_complex, cmar_real, fits_registers,
                                max_triangular_order, optimal_gemm_kernel,
                                register_cost)


class TestFormulas:
    def test_eq2_values(self):
        assert cmar_real(4, 4) == pytest.approx(2.0)
        assert cmar_real(2, 2) == pytest.approx(1.0)
        assert cmar_real(1, 4) == pytest.approx(0.8)

    def test_eq3_values(self):
        assert cmar_complex(3, 2) == pytest.approx(24 / 10)
        assert cmar_complex(2, 3) == pytest.approx(24 / 10)
        assert cmar_complex(2, 2) == pytest.approx(2.0)

    def test_register_cost(self):
        assert register_cost(4, 4, "d") == 8 + 8 + 16   # exactly 32
        assert register_cost(3, 2, "z") == 12 + 8 + 12  # exactly 32
        assert register_cost(4, 4, "s") == 32

    def test_fits_registers_boundary(self):
        assert fits_registers(4, 4, "d")
        assert not fits_registers(5, 4, "d")
        assert not fits_registers(4, 5, "d")
        assert fits_registers(3, 2, "c")
        assert not fits_registers(3, 3, "c")


class TestOptima:
    @pytest.mark.parametrize("dtype", ["s", "d"])
    def test_real_optimum_is_4x4(self, dtype):
        """The paper: 'For DGEMM and SGEMM, the optimal kernel size is 4x4'."""
        assert optimal_gemm_kernel(dtype) == (4, 4)

    @pytest.mark.parametrize("dtype", ["c", "z"])
    def test_complex_optimum_is_3x2(self, dtype):
        """'For CGEMM and ZGEMM, the optimal kernel size is 3x2 or 2x3';
        the tie-break picks the taller kernel."""
        assert optimal_gemm_kernel(dtype) == (3, 2)

    def test_optimum_is_actual_argmax(self):
        """Brute force over the feasible set confirms no better point."""
        mc, nc = optimal_gemm_kernel("d")
        best = cmar_real(mc, nc)
        for m in range(1, 32):
            for n in range(1, 32):
                if fits_registers(m, n, "d"):
                    assert cmar_real(m, n) <= best + 1e-12

    def test_more_registers_never_worse(self):
        m1, n1 = optimal_gemm_kernel("d", 32)
        m2, n2 = optimal_gemm_kernel("d", 64)
        assert cmar_real(m2, n2) >= cmar_real(m1, n1)


class TestTriangularBound:
    @pytest.mark.parametrize("dtype", ["s", "d"])
    def test_real_bound_is_5(self, dtype):
        """Section 4.2.2: '2M + M(M+1)/2 <= 32, so M is up to 5'."""
        assert max_triangular_order(dtype) == 5

    @pytest.mark.parametrize("dtype", ["c", "z"])
    def test_complex_bound_is_3(self, dtype):
        assert max_triangular_order(dtype) == 3

    def test_bound_formula(self):
        m = max_triangular_order("d")
        assert 2 * m + m * (m + 1) // 2 <= 32
        assert 2 * (m + 1) + (m + 1) * (m + 2) // 2 > 32
