"""CMAR analysis tests (paper Eqs. 2-3 and the Section 4.2 derivations)."""

import pytest

from repro.codegen.cmar import (cmar_complex, cmar_real, fits_registers,
                                max_triangular_order, optimal_gemm_kernel,
                                register_cost)


class TestFormulas:
    def test_eq2_values(self):
        assert cmar_real(4, 4) == pytest.approx(2.0)
        assert cmar_real(2, 2) == pytest.approx(1.0)
        assert cmar_real(1, 4) == pytest.approx(0.8)

    def test_eq3_values(self):
        assert cmar_complex(3, 2) == pytest.approx(24 / 10)
        assert cmar_complex(2, 3) == pytest.approx(24 / 10)
        assert cmar_complex(2, 2) == pytest.approx(2.0)

    def test_register_cost(self):
        assert register_cost(4, 4, "d") == 8 + 8 + 16   # exactly 32
        assert register_cost(3, 2, "z") == 12 + 8 + 12  # exactly 32
        assert register_cost(4, 4, "s") == 32

    def test_fits_registers_boundary(self):
        assert fits_registers(4, 4, "d")
        assert not fits_registers(5, 4, "d")
        assert not fits_registers(4, 5, "d")
        assert fits_registers(3, 2, "c")
        assert not fits_registers(3, 3, "c")


class TestOptima:
    @pytest.mark.parametrize("dtype", ["s", "d"])
    def test_real_optimum_is_4x4(self, dtype):
        """The paper: 'For DGEMM and SGEMM, the optimal kernel size is 4x4'."""
        assert optimal_gemm_kernel(dtype) == (4, 4)

    @pytest.mark.parametrize("dtype", ["c", "z"])
    def test_complex_optimum_is_3x2(self, dtype):
        """'For CGEMM and ZGEMM, the optimal kernel size is 3x2 or 2x3';
        the tie-break picks the taller kernel."""
        assert optimal_gemm_kernel(dtype) == (3, 2)

    def test_optimum_is_actual_argmax(self):
        """Brute force over the feasible set confirms no better point."""
        mc, nc = optimal_gemm_kernel("d")
        best = cmar_real(mc, nc)
        for m in range(1, 32):
            for n in range(1, 32):
                if fits_registers(m, n, "d"):
                    assert cmar_real(m, n) <= best + 1e-12

    def test_more_registers_never_worse(self):
        m1, n1 = optimal_gemm_kernel("d", 32)
        m2, n2 = optimal_gemm_kernel("d", 64)
        assert cmar_real(m2, n2) >= cmar_real(m1, n1)


class TestNonDefaultRegisterFiles:
    """The budget generalizes beyond ARMv8's 32 vregs: a 16-register
    machine (AArch32-like) and a 64-register one (SVE-like) must give
    the closed-form optima, and the brute force must agree."""

    def test_real_16_vregs_optimum(self):
        # feasible maxima: 2m+2n+mn <= 16 -> (3,2)/(2,3) at CMAR 1.2;
        # the tie-break keeps the taller kernel
        assert optimal_gemm_kernel("d", 16) == (3, 2)
        assert register_cost(3, 2, "d") == 16          # exactly the budget
        assert fits_registers(3, 2, "d", 16)
        assert not fits_registers(3, 3, "d", 16)       # 21 > 16

    def test_complex_16_vregs_optimum_and_tiebreak(self):
        # (2,1) and (1,2) tie at CMAR 4/3; taller kernel wins
        assert optimal_gemm_kernel("z", 16) == (2, 1)
        assert cmar_complex(2, 1) == pytest.approx(cmar_complex(1, 2))
        assert register_cost(2, 1, "z") == 16
        assert not fits_registers(2, 2, "z", 16)       # 24 > 16

    def test_real_64_vregs_optimum(self):
        # (6,6) costs 60 <= 64 at CMAR 3.0; no feasible point beats it
        assert optimal_gemm_kernel("d", 64) == (6, 6)
        assert register_cost(6, 6, "d") == 60
        assert not fits_registers(7, 6, "d", 64)       # 68 > 64

    def test_complex_64_vregs_optimum(self):
        # complex at 64 regs has the same feasible set as real at 32
        # (every term doubles), so the optimum is 4x4 again
        assert optimal_gemm_kernel("z", 64) == (4, 4)
        assert register_cost(4, 4, "z") == 64

    @pytest.mark.parametrize("dtype", ["d", "z"])
    @pytest.mark.parametrize("num_vregs", [16, 64])
    def test_bruteforce_agrees_with_feasibility(self, dtype, num_vregs):
        """The returned optimum is feasible and no feasible point has a
        strictly higher CMAR (ties resolved toward larger mc, then nc)."""
        mc, nc = optimal_gemm_kernel(dtype, num_vregs)
        metric = cmar_complex if dtype == "z" else cmar_real
        assert fits_registers(mc, nc, dtype, num_vregs)
        best = (metric(mc, nc), mc, nc)
        for m in range(1, num_vregs + 1):
            for n in range(1, num_vregs + 1):
                if fits_registers(m, n, dtype, num_vregs):
                    assert (metric(m, n), m, n) <= best

    def test_triangular_bound_scales_with_registers(self):
        assert max_triangular_order("d", 16) == 3   # M=4 needs 18 > 16
        assert max_triangular_order("d", 64) == 9   # M=9 needs 63 <= 64
        # verify the boundary arithmetic explicitly
        assert 2 * 9 + 9 * 10 // 2 == 63 <= 64
        assert 2 * 10 + 10 * 11 // 2 == 75 > 64


class TestTriangularBound:
    @pytest.mark.parametrize("dtype", ["s", "d"])
    def test_real_bound_is_5(self, dtype):
        """Section 4.2.2: '2M + M(M+1)/2 <= 32, so M is up to 5'."""
        assert max_triangular_order(dtype) == 5

    @pytest.mark.parametrize("dtype", ["c", "z"])
    def test_complex_bound_is_3(self, dtype):
        assert max_triangular_order(dtype) == 3

    def test_bound_formula(self):
        m = max_triangular_order("d")
        assert 2 * m + m * (m + 1) // 2 <= 32
        assert 2 * (m + 1) + (m + 1) * (m + 2) // 2 > 32
