"""Kernel-optimizer tests: semantics preservation and cycle improvement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.generator_gemm import generate_gemm_kernel
from repro.codegen.generator_trsm import generate_trsm_triangular
from repro.codegen.optimizer import build_dag, schedule_program
from repro.machine import KUNPENG_920, MemorySpace, VectorExecutor
from repro.machine.isa import Op, OpClass
from repro.machine.pipeline import AddressSpace


def run_gemm_like(prog, seed, nc=4, mc=4, k=8):
    """Execute a GEMM-shaped program on random memory; return C buffer."""
    rng = np.random.default_rng(seed)
    mem = MemorySpace()
    pa = mem.alloc("pA", mc * k * 2, 8)
    pa[:] = rng.standard_normal(pa.shape)
    pb = mem.alloc("pB", nc * k * 2, 8)
    pb[:] = rng.standard_normal(pb.shape)
    c = mem.alloc("C", mc * nc * 2, 8)
    c[:] = rng.standard_normal(c.shape)
    ex = VectorExecutor(mem, groups=1)
    ex.set_pointer(0, "pA", 0)
    ex.set_pointer(1, "pB", 0)
    for j in range(nc):
        ex.set_pointer(2 + j, "C", j * mc * 2 * 8)
    ex.run(prog)
    return c.copy()


def time_on_warm(prog, machine=KUNPENG_920, mc=4, nc=4, k=8):
    caches = machine.make_caches()
    pipe = machine.make_pipeline(caches)
    asp = AddressSpace()
    aA = asp.place("pA", mc * k * 16)
    aB = asp.place("pB", nc * k * 16)
    aC = asp.place("C", mc * nc * 16)
    for base, size in [(aA, mc * k * 16), (aB, nc * k * 16),
                       (aC, mc * nc * 16)]:
        caches.warm_range(base, size)
    init = {0: aA, 1: aB}
    init.update({2 + j: aC + j * mc * 16 for j in range(nc)})
    return pipe.simulate(prog, init)


class TestSemanticsPreserved:
    @pytest.mark.parametrize("dt,mc,nc,k", [
        ("d", 4, 4, 8), ("d", 4, 4, 1), ("d", 3, 2, 3), ("s", 4, 4, 16),
        ("z", 3, 2, 5), ("c", 2, 2, 4),
    ])
    def test_gemm_kernels(self, dt, mc, nc, k):
        prog = generate_gemm_kernel(mc, nc, k, dt, KUNPENG_920,
                                    alpha=1.5, beta=0.5)
        opt = schedule_program(prog, KUNPENG_920)
        # execute both on identical memory images
        from repro.types import BlasDType
        bdt = BlasDType.from_any(dt)
        lanes = KUNPENG_920.lanes(bdt)
        ncomp = 2 if bdt.is_complex else 1
        for seed in (0, 1):
            rng = np.random.default_rng(seed)
            shapes = {"pA": mc * k * ncomp * lanes,
                      "pB": nc * k * ncomp * lanes,
                      "C": mc * nc * ncomp * lanes}
            results = []
            for p in (prog, opt):
                mem = MemorySpace()
                r2 = np.random.default_rng(seed)
                for name, n in shapes.items():
                    buf = mem.alloc(name, n, bdt.real_itemsize)
                    buf[:] = r2.standard_normal(n)
                ex = VectorExecutor(mem, groups=1)
                ex.set_pointer(0, "pA", 0)
                ex.set_pointer(1, "pB", 0)
                esz = bdt.real_itemsize
                for j in range(nc):
                    ex.set_pointer(2 + j, "C", j * mc * ncomp * lanes * esz)
                ex.run(p)
                results.append(mem["C"].copy())
            assert np.array_equal(results[0], results[1])

    def test_trsm_triangular_kernel(self):
        prog = generate_trsm_triangular(4, 6, "d", KUNPENG_920)
        opt = schedule_program(prog, KUNPENG_920)
        for seed in (3, 4):
            outs = []
            for p in (prog, opt):
                rng = np.random.default_rng(seed)
                mem = MemorySpace()
                pa = mem.alloc("pA", 10 * 2, 8)
                pa[:] = rng.standard_normal(pa.shape) + 2
                pb = mem.alloc("pB", 4 * 6 * 2, 8)
                pb[:] = rng.standard_normal(pb.shape)
                ex = VectorExecutor(mem, groups=1)
                ex.set_pointer(0, "pA", 0)
                ex.set_pointer(1, "pB", 0)
                ex.set_pointer(6, "pB", 0)
                ex.run(p)
                outs.append(pb.copy())
            assert np.array_equal(outs[0], outs[1])

    def test_instruction_multiset_preserved(self):
        prog = generate_gemm_kernel(4, 4, 8, "d", KUNPENG_920)
        opt = schedule_program(prog, KUNPENG_920)
        assert sorted(i.asm() for i in prog) == sorted(i.asm() for i in opt)
        assert len(opt) == len(prog)


class TestImprovement:
    def test_figure5_staging(self):
        """original >= dependence-reordered >= resource-aware optimized."""
        prog = generate_gemm_kernel(4, 4, 16, "d", KUNPENG_920)
        reord = schedule_program(prog, KUNPENG_920, resource_aware=False)
        opt = schedule_program(prog, KUNPENG_920, resource_aware=True)
        c0 = time_on_warm(prog).cycles
        c1 = time_on_warm(reord).cycles
        c2 = time_on_warm(opt).cycles
        assert c0 >= c1 >= c2
        assert c2 < 0.85 * c0     # the optimizer must actually matter

    @pytest.mark.parametrize("dt", ["s", "d", "z"])
    def test_never_slower(self, dt):
        prog = generate_gemm_kernel(3, 2, 6, dt, KUNPENG_920)
        opt = schedule_program(prog, KUNPENG_920)
        assert time_on_warm(opt, mc=3, nc=2, k=6).cycles <= \
            time_on_warm(prog, mc=3, nc=2, k=6).cycles


class TestStructure:
    def test_prefetches_stay_first(self):
        prog = generate_gemm_kernel(4, 4, 8, "d", KUNPENG_920)
        opt = schedule_program(prog, KUNPENG_920)
        n_pf = sum(1 for i in prog if i.iclass is OpClass.PREFETCH)
        assert all(i.iclass is OpClass.PREFETCH for i in opt.instrs[:n_pf])

    def test_name_and_meta(self):
        prog = generate_gemm_kernel(2, 2, 4, "d", KUNPENG_920)
        opt = schedule_program(prog, KUNPENG_920)
        assert opt.name.endswith("_opt")
        assert opt.meta["scheduled"] == "opt"
        reord = schedule_program(prog, KUNPENG_920, resource_aware=False)
        assert reord.meta["scheduled"] == "reord"

    def test_dag_edges_forward_only(self):
        prog = generate_gemm_kernel(4, 4, 4, "d", KUNPENG_920)
        body = [i for i in prog.instrs if i.iclass is not OpClass.PREFETCH]
        dag = build_dag(body, KUNPENG_920)
        for src, edges in enumerate(dag.succs):
            for dst, _ in edges:
                assert dst > src

    def test_store_load_order_same_base_kept(self):
        """A load after a store through the same pointer must not be
        hoisted above it."""
        from repro.machine.isa import fmul, ldrv, strv
        from repro.machine.program import Program
        prog = Program("t", [
            fmul(0, 1, 2, ew=8),
            strv(0, 0, 0),
            ldrv(3, 0, 0),
            fmul(4, 3, 3, ew=8),
        ], ew=8, lanes=2)
        opt = schedule_program(prog, KUNPENG_920)
        ops = [i.op for i in opt.instrs]
        assert ops.index(Op.STRV) < ops.index(Op.LDRV)
