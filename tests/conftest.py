"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.machines import KUNPENG_920, XEON_GOLD_6240
from repro.types import BlasDType

NP_DTYPES = {
    "s": np.float32,
    "d": np.float64,
    "c": np.complex64,
    "z": np.complex128,
}

ALL_DTYPES = ("s", "d", "c", "z")
REAL_DTYPES = ("s", "d")
COMPLEX_DTYPES = ("c", "z")


def tolerance(dtype: str) -> float:
    """Comparison tolerance: single-precision kernels round like float32."""
    return 5e-3 if dtype in ("s", "c") else 1e-9


def random_batch(rng: np.random.Generator, batch: int, rows: int, cols: int,
                 dtype: str) -> np.ndarray:
    """Random (batch, rows, cols) array of the requested BLAS dtype."""
    a = rng.standard_normal((batch, rows, cols))
    if dtype in COMPLEX_DTYPES:
        a = a + 1j * rng.standard_normal((batch, rows, cols))
    return a.astype(NP_DTYPES[dtype])


def random_triangular(rng: np.random.Generator, batch: int, d: int,
                      dtype: str, uplo: str = "L") -> np.ndarray:
    """Well-conditioned random triangular batch (diagonal pushed off zero)."""
    a = random_batch(rng, batch, d, d, dtype)
    tri = np.tril(a) if uplo == "L" else np.triu(a)
    eye = (3.0 + 0j if dtype in COMPLEX_DTYPES else 3.0) * np.eye(d)
    return (tri + eye[None]).astype(NP_DTYPES[dtype])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20220829)  # the paper's conference date


@pytest.fixture
def kunpeng():
    return KUNPENG_920


@pytest.fixture
def xeon():
    return XEON_GOLD_6240
