"""Scale integration tests: many groups, many rounds, mixed routines.

Everything else in the suite uses small batches for speed; these tests
push realistic batch counts through the vectorized executor to catch
anything that only breaks with group fan-out (offset arithmetic,
padding lanes, plan reuse across batches).
"""

import numpy as np
import pytest

from repro import IATF, KUNPENG_920
from repro.extensions import CompactGetrf
from repro.layout import CompactBatch
from repro.reference import gemm_reference, trsm_reference
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import random_batch, random_triangular


@pytest.fixture(scope="module")
def iatf():
    return IATF(KUNPENG_920)


def test_gemm_thousand_matrices(iatf, rng):
    batch = 1001          # odd: exercises the padded final group
    p = GemmProblem(6, 6, 6, "d", batch=batch, alpha=2.0, beta=0.5)
    a = random_batch(rng, batch, 6, 6, "d")
    b = random_batch(rng, batch, 6, 6, "d")
    c = random_batch(rng, batch, 6, 6, "d")
    got = iatf.gemm(a, b, c.copy(), 2.0, 0.5)
    want = gemm_reference(p, a, b, c)
    assert np.abs(got - want).max() < 1e-9


def test_trsm_thousand_matrices(iatf, rng):
    batch = 999
    p = TrsmProblem(7, 5, "s", batch=batch)
    a = random_triangular(rng, batch, 7, "s")
    b = random_batch(rng, batch, 7, 5, "s")
    got = iatf.trsm(a, b.copy())
    want = trsm_reference(p, a, b)
    assert np.abs(got - want).max() < 5e-2   # float32, size-7 solves


def test_plan_reused_across_batches(iatf, rng):
    """One plan, three different input batches: results stay right and
    the plan object is shared (the run-time stage's amortization)."""
    p = GemmProblem(4, 4, 4, "d", batch=64)
    plan = iatf.plan_gemm(p)
    for seed in (1, 2, 3):
        r = np.random.default_rng(seed)
        a = random_batch(r, 64, 4, 4, "d")
        b = random_batch(r, 64, 4, 4, "d")
        cc = CompactBatch.from_matrices(np.zeros((64, 4, 4)), 2)
        iatf.engine.execute_gemm(plan, CompactBatch.from_matrices(a, 2),
                                 CompactBatch.from_matrices(b, 2), cc)
        assert np.abs(cc.to_matrices() - a @ b).max() < 1e-9
    assert iatf.plan_gemm(p) is plan


def test_gemm_then_trsm_chain(iatf, rng):
    """A realistic composite: form C = A @ B, then solve L X = C."""
    batch = 96
    a = random_batch(rng, batch, 8, 8, "d")
    b = random_batch(rng, batch, 8, 8, "d")
    low = random_triangular(rng, batch, 8, "d")
    c = iatf.gemm(a, b, np.zeros((batch, 8, 8)), beta=0.0)
    x = iatf.trsm(low, c.copy())
    assert np.abs(np.tril(low) @ x - a @ b).max() < 1e-8


def test_lu_solve_pipeline_at_scale(rng):
    """Factor 500 systems with the LU extension and solve in bulk."""
    getrf = CompactGetrf(KUNPENG_920)
    batch, d = 500, 10
    a = (random_batch(rng, batch, d, d, "d") + d * np.eye(d))
    b = random_batch(rng, batch, d, 2, "d")
    ca = CompactBatch.from_matrices(a, 2)
    cb = CompactBatch.from_matrices(b, 2)
    getrf.factor(ca)
    getrf.solve(ca, cb)
    x = cb.to_matrices()
    assert np.abs(a @ x - b).max() < 1e-7


def test_padding_lanes_never_leak(iatf, rng):
    """Results for batch = k*P + 1 must equal the same matrices computed
    in a full batch (padding garbage must never reach real outputs)."""
    base = random_batch(rng, 8, 5, 5, "d")
    b2 = random_batch(rng, 8, 5, 5, "d")
    full = iatf.gemm(base, b2, np.zeros((8, 5, 5)), beta=0.0)
    ragged = iatf.gemm(base[:5], b2[:5], np.zeros((5, 5, 5)), beta=0.0)
    assert np.array_equal(full[:5], ragged)
