"""Compact-layout tests: round trips, geometry, padding, errors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.layout import CompactBatch, pad_to_multiple, padded_count
from tests.conftest import ALL_DTYPES, NP_DTYPES, random_batch


LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_exact_batch(self, rng, dtype):
        a = random_batch(rng, 8, 3, 5, dtype)
        cb = CompactBatch.from_matrices(a, LANES[dtype])
        assert np.allclose(cb.to_matrices(), a, atol=1e-6)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_padded_batch(self, rng, dtype):
        a = random_batch(rng, 7, 4, 4, dtype)
        cb = CompactBatch.from_matrices(a, LANES[dtype])
        back = cb.to_matrices()
        assert back.shape == (7, 4, 4)
        assert np.allclose(back, a, atol=1e-6)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_single_matrix(self, rng, dtype):
        a = random_batch(rng, 1, 2, 3, dtype)
        cb = CompactBatch.from_matrices(a, LANES[dtype])
        assert np.allclose(cb.matrix(0), a[0], atol=1e-6)

    def test_padding_lanes_are_zero(self, rng):
        a = random_batch(rng, 3, 2, 2, "d")
        cb = CompactBatch.from_matrices(a, 2)
        grid = cb.as_grid()
        assert np.all(grid[1, :, :, :, 1] == 0)   # lane 3 is padding


class TestGeometry:
    def test_column_major_contiguity(self, rng):
        """Elements down a column are adjacent — the property the
        no-packing fast paths rely on."""
        a = random_batch(rng, 4, 5, 3, "d")
        cb = CompactBatch.from_matrices(a, 2)
        assert (cb.element_offset(1, 0) - cb.element_offset(0, 0)
                == cb.elem_stride_bytes)
        assert (cb.element_offset(0, 1) - cb.element_offset(0, 0)
                == cb.col_stride_bytes)
        assert cb.col_stride_bytes == 5 * cb.elem_stride_bytes

    def test_complex_planes_adjacent(self, rng):
        """re plane then im plane per element: an LDP fetches both."""
        a = random_batch(rng, 4, 3, 3, "c")
        cb = CompactBatch.from_matrices(a, 4)
        assert (cb.element_offset(0, 0, comp=1)
                - cb.element_offset(0, 0, comp=0)
                == cb.lanes * cb.dtype.real_itemsize)

    def test_buffer_values_at_offsets(self, rng):
        a = random_batch(rng, 2, 3, 4, "d")
        cb = CompactBatch.from_matrices(a, 2)
        isz = 8
        for i in range(3):
            for j in range(4):
                off = cb.element_offset(i, j)
                assert cb.buffer[off // isz] == a[0, i, j]
                assert cb.buffer[off // isz + 1] == a[1, i, j]

    def test_group_strides_and_offsets(self, rng):
        a = random_batch(rng, 6, 2, 2, "d")
        cb = CompactBatch.from_matrices(a, 2)
        assert cb.groups == 3
        offs = cb.group_base_offsets()
        assert list(offs) == [0, cb.group_stride_bytes,
                              2 * cb.group_stride_bytes]
        assert cb.nbytes == 3 * cb.group_stride_bytes

    def test_zeros_constructor(self):
        cb = CompactBatch.zeros(3, 4, 5, "z", 2)
        assert cb.groups == 3
        assert not cb.buffer.any()
        assert cb.to_matrices().shape == (5, 3, 4)


class TestErrors:
    def test_wrong_buffer_size(self):
        with pytest.raises(LayoutError):
            CompactBatch(np.zeros(7, dtype=np.float64), 2, 2, 2,
                         dtype="d", lanes=2)

    def test_wrong_buffer_dtype(self):
        with pytest.raises(LayoutError):
            CompactBatch(np.zeros(8, dtype=np.float32), 2, 2, 2,
                         dtype="d", lanes=2)

    def test_from_matrices_needs_3d(self):
        with pytest.raises(LayoutError):
            CompactBatch.from_matrices(np.zeros((2, 2)), 2)

    def test_element_offset_bounds(self, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 2, 2, "d"), 2)
        with pytest.raises(LayoutError):
            cb.element_offset(2, 0)
        with pytest.raises(LayoutError):
            cb.element_offset(0, 0, comp=1)   # real has one plane

    def test_matrix_index_bounds(self, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 3, 2, 2, "d"), 2)
        with pytest.raises(LayoutError):
            cb.matrix(3)

    def test_copy_is_independent(self, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 2, 2, "d"), 2)
        cp = cb.copy()
        cp.buffer[:] = 0
        assert cb.buffer.any()


class TestPaddingHelpers:
    def test_padded_count(self):
        assert padded_count(0, 4) == 0
        assert padded_count(1, 4) == 4
        assert padded_count(4, 4) == 4
        assert padded_count(5, 4) == 8

    def test_padded_count_errors(self):
        with pytest.raises(ValueError):
            padded_count(-1, 4)
        with pytest.raises(ValueError):
            padded_count(4, 0)

    def test_pad_to_multiple_no_copy_when_aligned(self):
        a = np.ones((4, 4))
        assert pad_to_multiple(a, 0, 4) is a

    def test_pad_to_multiple_pads_zeros(self):
        a = np.ones((3, 2))
        p = pad_to_multiple(a, 0, 4)
        assert p.shape == (4, 2)
        assert np.all(p[3] == 0)


@settings(max_examples=40, deadline=None)
@given(batch=st.integers(1, 12), rows=st.integers(1, 9),
       cols=st.integers(1, 9),
       dtype=st.sampled_from(ALL_DTYPES),
       seed=st.integers(0, 2**16))
def test_property_roundtrip(batch, rows, cols, dtype, seed):
    """Interleave/de-interleave is the identity for any shape and dtype."""
    rng = np.random.default_rng(seed)
    a = random_batch(rng, batch, rows, cols, dtype)
    cb = CompactBatch.from_matrices(a, LANES[dtype])
    assert np.array_equal(cb.to_matrices(), a)
