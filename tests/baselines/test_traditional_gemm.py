"""Baseline GEMM tests: functional correctness + policy differentiation."""

import numpy as np
import pytest

from repro.baselines import ArmplBatch, LibxsmmBatch, OpenBlasLoop
from repro.baselines.common import (BaselinePolicy, decompose_cols,
                                    decompose_vectors, std_colmajor_buffer,
                                    std_from_colmajor)
from repro.errors import InvalidProblemError
from repro.machine.machines import KUNPENG_920
from repro.reference import gemm_reference
from repro.types import BlasDType, GemmProblem
from tests.conftest import ALL_DTYPES, random_batch, tolerance


@pytest.fixture(scope="module")
def openblas():
    return OpenBlasLoop(KUNPENG_920)


@pytest.fixture(scope="module")
def armpl():
    return ArmplBatch(KUNPENG_920)


@pytest.fixture(scope="module")
def libxsmm():
    return LibxsmmBatch(KUNPENG_920)


class TestDecompositions:
    def test_vectors_cover_m(self):
        for m in range(1, 40):
            chunks = decompose_vectors(m, 4)
            rows = sum((mv - 1) * 4 + t for mv, t in chunks)
            assert rows == m, m

    def test_vectors_respect_max_chunk(self):
        assert all(mv <= 2 for mv, _ in decompose_vectors(20, 4, 2))

    def test_partial_tail(self):
        assert decompose_vectors(5, 4) == [(1, 4), (1, 1)]
        assert decompose_vectors(4, 4) == [(1, 4)]
        assert decompose_vectors(17, 4) == [(4, 4), (1, 1)]

    def test_cols(self):
        assert decompose_cols(11) == [4, 4, 2, 1]
        assert decompose_cols(3, max_cols=2) == [2, 1]


class TestLayoutHelpers:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_colmajor_roundtrip(self, rng, dtype):
        a = random_batch(rng, 3, 4, 5, dtype)
        dt = BlasDType.from_any(dtype)
        buf = std_colmajor_buffer(a, dt)
        back = std_from_colmajor(buf, 3, 4, 5, dt)
        assert np.array_equal(back, a)

    def test_colmajor_order(self, rng):
        a = random_batch(rng, 1, 3, 2, "d")
        buf = std_colmajor_buffer(a, BlasDType.D)
        # column-major: column 0 first
        assert np.array_equal(buf[:3], a[0, :, 0])

    def test_complex_interleaved(self, rng):
        a = random_batch(rng, 1, 2, 1, "z")
        buf = std_colmajor_buffer(a, BlasDType.Z)
        assert buf[0] == a[0, 0, 0].real
        assert buf[1] == a[0, 0, 0].imag


class TestFunctional:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("mode", ["NN", "NT", "TN", "TT"])
    def test_openblas_modes(self, openblas, rng, dtype, mode):
        p = GemmProblem(9, 7, 5, dtype, mode[0], mode[1], 6,
                        alpha=1.5, beta=0.5)
        a = random_batch(rng, 6, *p.a_shape, dtype)
        b = random_batch(rng, 6, *p.b_shape, dtype)
        c = random_batch(rng, 6, 9, 7, dtype)
        got = openblas.gemm.execute(p, a, b, c.copy())
        want = gemm_reference(p, a, b, c)
        assert np.abs(got - want).max() < tolerance(dtype)

    @pytest.mark.parametrize("m,n,k", [
        (1, 1, 1), (4, 4, 4), (5, 5, 5), (16, 16, 16), (17, 3, 9),
        (33, 33, 33),
    ])
    def test_shapes(self, armpl, rng, m, n, k):
        p = GemmProblem(m, n, k, "d", batch=3, beta=0.0)
        a = random_batch(rng, 3, m, k, "d")
        b = random_batch(rng, 3, k, n, "d")
        got = armpl.gemm.execute(p, a, b, np.zeros((3, m, n)))
        assert np.abs(got - a @ b).max() < 1e-9

    def test_libxsmm_rejects_complex(self, libxsmm):
        p = GemmProblem(4, 4, 4, "z", batch=2)
        with pytest.raises(InvalidProblemError):
            libxsmm.gemm.execute(p, np.zeros((2, 4, 4), complex),
                                 np.zeros((2, 4, 4), complex),
                                 np.zeros((2, 4, 4), complex))

    def test_libxsmm_has_no_trsm(self, libxsmm):
        from repro.errors import UnsupportedModeError
        with pytest.raises(UnsupportedModeError):
            libxsmm.trsm


class TestTimingPolicies:
    def test_openblas_slowest_at_tiny_sizes(self, openblas, armpl, libxsmm):
        p = GemmProblem(2, 2, 2, "d", batch=4096)
        ob = openblas.gemm.time(p).gflops
        ar = armpl.gemm.time(p).gflops
        xs = libxsmm.gemm.time(p).gflops
        assert ob < ar < xs

    def test_overheads_amortize_with_size(self, openblas, libxsmm):
        """The OpenBLAS/LIBXSMM gap must shrink as matrices grow."""
        tiny = GemmProblem(2, 2, 2, "d", batch=1024)
        big = GemmProblem(32, 32, 32, "d", batch=1024)
        gap_tiny = (libxsmm.gemm.time(tiny).gflops
                    / openblas.gemm.time(tiny).gflops)
        gap_big = (libxsmm.gemm.time(big).gflops
                   / openblas.gemm.time(big).gflops)
        assert gap_big < gap_tiny

    def test_partial_vector_hurts(self, libxsmm):
        """Single-precision M=5 fills 5 of 8 lanes; M=4 and M=8 fill all
        (the paper's edge-processing inefficiency)."""
        def eff(m):
            p = GemmProblem(m, 8, 8, "s", batch=1024)
            return libxsmm.gemm.time(p).gflops / (m * 8 * 8)
        assert eff(5) < eff(4)
        assert eff(5) < eff(8)

    def test_transpose_copy_charged(self, armpl):
        nn = GemmProblem(8, 8, 8, "d", batch=1024)
        tn = GemmProblem(8, 8, 8, "d", "T", "N", 1024)
        t_nn = armpl.gemm.time(nn)
        t_tn = armpl.gemm.time(tn)
        assert t_tn.pack_cycles_per_matrix > t_nn.pack_cycles_per_matrix

    def test_timing_caches_consistent(self, openblas):
        p = GemmProblem(4, 4, 4, "d", batch=256)
        assert openblas.gemm.time(p).total_cycles == \
            openblas.gemm.time(p).total_cycles

    def test_policy_fields(self):
        pol = BaselinePolicy("x", 1.0, 2.0, True, False)
        assert pol.supports_complex
        assert pol.per_call_overhead_cycles == 1.0
