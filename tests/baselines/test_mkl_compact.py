"""MKL-compact comparator tests."""

import numpy as np
import pytest

from repro.baselines import MklCompact
from repro.machine.machines import XEON_GOLD_6240
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import random_batch, random_triangular


@pytest.fixture(scope="module")
def mkl():
    return MklCompact()


def test_runs_on_xeon_machine(mkl):
    assert mkl.machine is XEON_GOLD_6240


def test_gemm_functional(mkl, rng):
    a = random_batch(rng, 20, 6, 6, "d")
    b = random_batch(rng, 20, 6, 6, "d")
    got = mkl.gemm(a, b, np.zeros((20, 6, 6)), beta=0.0)
    assert np.abs(got - a @ b).max() < 1e-9


def test_trsm_functional(mkl, rng):
    a = random_triangular(rng, 20, 5, "d")
    b = random_batch(rng, 20, 5, 4, "d")
    x = mkl.trsm(a, b.copy())
    assert np.abs(np.tril(a) @ x - b).max() < 1e-9


def test_always_packs(mkl):
    """MKL compact is not input-aware: even no-pack-eligible shapes pay
    the packing pass."""
    t = mkl.time_gemm(GemmProblem(4, 4, 4, "d", batch=2048))
    assert t.plan.pack_cost.bytes_written > 0
    assert t.plan.meta["packing"]["A"] != "no-pack"


def test_higher_absolute_lower_isnt_guaranteed_relative(mkl):
    """Xeon peak is 8x Kunpeng's; absolute GFLOPS should exceed the
    Kunpeng model even when percent-of-peak is lower."""
    from repro import IATF, KUNPENG_920
    p = GemmProblem(16, 16, 16, "d", batch=2048)
    xeon_t = mkl.time_gemm(p)
    kp_t = IATF(KUNPENG_920).time_gemm(p)
    assert xeon_t.gflops > kp_t.gflops


def test_timing_trsm_positive(mkl):
    t = mkl.time_trsm(TrsmProblem(8, 8, "d", batch=2048))
    assert 0 < t.gflops < XEON_GOLD_6240.peak_gflops("d")
