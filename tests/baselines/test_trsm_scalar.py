"""Baseline TRSM tests: the scalar-solve timing model and policies."""

import numpy as np
import pytest

from repro.baselines import ArmplBatch, OpenBlasLoop
from repro.baselines.trsm_scalar import (TraditionalTrsm,
                                         _reciprocal_program,
                                         _scalar_column_program)
from repro.machine.isa import Op
from repro.machine.machines import KUNPENG_920
from repro.types import BlasDType, TrsmProblem
from tests.conftest import random_batch, random_triangular


@pytest.fixture(scope="module")
def openblas():
    return OpenBlasLoop(KUNPENG_920)


@pytest.fixture(scope="module")
def armpl():
    return ArmplBatch(KUNPENG_920)


class TestColumnProgram:
    def test_in_loop_division_count(self):
        prog = _scalar_column_program(6, BlasDType.D, KUNPENG_920, True)
        assert prog.count(Op.FDIV) == 6      # one per diagonal step

    def test_reciprocal_variant_divides_nowhere(self):
        prog = _scalar_column_program(6, BlasDType.D, KUNPENG_920, False)
        assert prog.count(Op.FDIV) == 0
        assert prog.count(Op.FMUL) >= 6      # multiplies instead

    def test_complex_division_is_two_divides(self):
        prog = _scalar_column_program(3, BlasDType.Z, KUNPENG_920, True)
        assert prog.count(Op.FDIV) == 2 * 3

    def test_fma_count_quadratic(self):
        p4 = _scalar_column_program(4, BlasDType.D, KUNPENG_920, True)
        p8 = _scalar_column_program(8, BlasDType.D, KUNPENG_920, True)
        fmls4 = p4.count(Op.FMLS)
        fmls8 = p8.count(Op.FMLS)
        assert fmls4 == 4 * 3 // 2
        assert fmls8 == 8 * 7 // 2

    def test_scalar_loads_single_lane(self):
        prog = _scalar_column_program(4, BlasDType.D, KUNPENG_920, True)
        for ins in prog.instrs:
            if ins.is_load:
                assert ins.nlanes == 1

    def test_reciprocal_program_divisions(self):
        prog = _reciprocal_program(5, BlasDType.D, KUNPENG_920)
        assert prog.count(Op.FDIV) == 5
        progz = _reciprocal_program(5, BlasDType.Z, KUNPENG_920)
        assert progz.count(Op.FDIV) == 10


class TestTimingModel:
    def test_division_variant_slower(self):
        p = TrsmProblem(8, 8, "d", batch=1024)
        pol = OpenBlasLoop(KUNPENG_920).trsm.policy
        div = TraditionalTrsm(KUNPENG_920, pol, in_loop_division=True)
        recip = TraditionalTrsm(KUNPENG_920, pol, in_loop_division=False)
        assert div.time(p).total_cycles > recip.time(p).total_cycles

    def test_armpl_faster_than_openblas(self, openblas, armpl):
        for n in (2, 8, 24):
            p = TrsmProblem(n, n, "d", batch=1024)
            assert armpl.trsm.time(p).gflops > openblas.trsm.time(p).gflops

    def test_cycles_grow_with_size(self, openblas):
        prev = 0.0
        for n in (2, 4, 8, 16):
            t = openblas.trsm.time(TrsmProblem(n, n, "d", batch=64))
            assert t.cycles_per_matrix > prev
            prev = t.cycles_per_matrix

    def test_right_side_uses_other_dimension(self, openblas):
        left = openblas.trsm.time(TrsmProblem(4, 16, "d", side="L",
                                              batch=64))
        right = openblas.trsm.time(TrsmProblem(4, 16, "d", side="R",
                                               batch=64))
        # side R solves a 16x16 system over 4 columns: more work
        assert right.cycles_per_matrix > left.cycles_per_matrix

    def test_execute_is_reference(self, openblas, rng):
        p = TrsmProblem(5, 4, "d", batch=3)
        a = random_triangular(rng, 3, 5, "d")
        b = random_batch(rng, 3, 5, 4, "d")
        x = openblas.trsm.execute(p, a, b)
        assert np.allclose(np.tril(a) @ x, b, atol=1e-10)


class TestBlockedStructure:
    def test_large_sizes_use_gemm_updates(self, openblas):
        """Beyond one diagonal block, baseline GFLOPS must keep growing
        (the Eq. 1 blocked structure) instead of flattening at the
        scalar solve's rate."""
        from repro.baselines.trsm_scalar import DIAG_BLOCK
        small = openblas.trsm.time(
            TrsmProblem(DIAG_BLOCK, DIAG_BLOCK, "d", batch=512))
        large = openblas.trsm.time(
            TrsmProblem(4 * DIAG_BLOCK, 4 * DIAG_BLOCK, "d", batch=512))
        assert large.gflops > small.gflops

    def test_block_boundary_continuity(self, openblas):
        """Cycles/matrix must grow monotonically through the block
        boundary (no modeling cliff at DIAG_BLOCK+1)."""
        from repro.baselines.trsm_scalar import DIAG_BLOCK
        cycles = [openblas.trsm.time(
            TrsmProblem(m, 8, "d", batch=64)).cycles_per_matrix
            for m in range(DIAG_BLOCK - 2, DIAG_BLOCK + 3)]
        assert cycles == sorted(cycles)

    def test_timing_cached(self, armpl):
        p = TrsmProblem(16, 16, "d", batch=256)
        assert armpl.trsm.time(p) is armpl.trsm.time(p)
