"""Registry, counter, histogram, and enable/disable semantics."""

import threading

from repro import obs


class TestDisabledIsNoOp:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_count_records_nothing_when_disabled(self):
        reg = obs.Registry()
        old = obs.set_registry(reg)
        try:
            obs.count("x")
            obs.observe("y", 1.0)
            obs.gauge("z", 5)
            assert reg.snapshot()["counters"] == {}
            assert reg.snapshot()["histograms"] == {}
        finally:
            obs.set_registry(old)

    def test_span_is_shared_null_object(self):
        assert obs.span("a") is obs.span("b")

    def test_tick_free_when_disabled(self):
        assert obs.tick() == 0.0


class TestCounters:
    def test_increment_and_snapshot(self):
        with obs.scoped() as reg:
            obs.count("hits")
            obs.count("hits", 2)
            obs.count("cycles", 1.5)
            snap = reg.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["counters"]["cycles"] == 1.5

    def test_gauge_is_last_write_wins(self):
        with obs.scoped() as reg:
            obs.gauge("size", 3)
            obs.gauge("size", 7)
            assert reg.counters()["size"] == 7

    def test_thread_safety(self):
        with obs.scoped() as reg:
            def work():
                for _ in range(1000):
                    obs.count("n")
            threads = [threading.Thread(target=work) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert reg.counters()["n"] == 8000


class TestHistograms:
    def test_summary_stats(self):
        h = obs.Histogram("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0

    def test_percentile_from_sample(self):
        h = obs.Histogram("t")
        for v in range(101):
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(100) == 100.0

    def test_summary_includes_tail_percentiles(self):
        h = obs.Histogram("t")
        for v in range(101):
            h.observe(float(v))
        s = h.summary()
        assert s["p50"] == 50.0
        assert s["p95"] == 95.0
        assert s["p99"] == 99.0

    def test_sample_is_bounded(self):
        h = obs.Histogram("t")
        for v in range(10 * obs.Histogram.SAMPLE):
            h.observe(float(v))
        assert h.count == 10 * obs.Histogram.SAMPLE
        assert len(h._sample) == obs.Histogram.SAMPLE


class TestRegistry:
    def test_report_renders_counters_and_histograms(self):
        with obs.scoped() as reg:
            obs.count("plan_cache.hits", 3)
            obs.observe("gen_ms", 1.25)
            text = reg.report()
        assert "plan_cache.hits" in text
        assert "gen_ms" in text
        assert "p99=" in text

    def test_reset_clears_everything(self):
        with obs.scoped() as reg:
            obs.count("a")
            with obs.span("s"):
                pass
            reg.reset()
            snap = reg.snapshot()
        assert snap["counters"] == {} and snap["spans"] == 0

    def test_span_cap_drops_not_grows(self):
        reg = obs.Registry()
        reg.MAX_SPANS = 3
        for i in range(5):
            reg.record_span(i)
        assert len(reg.spans) == 3
        assert reg.dropped_spans == 2

    def test_scoped_restores_previous_state(self):
        before_reg = obs.get_registry()
        before_enabled = obs.enabled()
        with obs.scoped() as reg:
            assert obs.enabled()
            assert obs.get_registry() is reg
            assert reg is not before_reg
        assert obs.get_registry() is before_reg
        assert obs.enabled() == before_enabled
