"""Acceptance guard: disabled instrumentation must cost (almost) nothing.

The instrumented hot paths (plan_gemm, time_plan, pack selection, the
kernel registry) each make a handful of ``obs.count``/``obs.span``
calls per invocation.  Rather than comparing two noisy wall-clock runs
of the same loop, this test bounds the *primitive* cost directly: the
total price of far more disabled obs calls than a 100-problem
plan+time loop actually makes must stay under 2% of that loop's wall
time.  Margins are generous — the disabled path is a single module
global check, ~100ns, versus multi-millisecond pipeline simulations.
"""

import os
import time
import tracemalloc

from repro import IATF, KUNPENG_920, obs
from repro.types import GemmProblem

#: a deliberate overcount of obs call sites on one plan+time iteration
#: (the real instrumented paths make ~15-30 calls per plan+time)
CALLS_PER_ITERATION = 50


def _time_obs_bundles(n: int) -> float:
    """Best-of-3 wall time for n disabled (count, span, observe, tick)
    bundles; the min filters out scheduler noise on shared runners."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(n):
            obs.count("overhead.test")
            with obs.span("overhead.test"):
                pass
            obs.observe("overhead.test", 1.0)
            obs.tick()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_obs_overhead_under_two_percent():
    assert not obs.enabled()
    iatf = IATF(KUNPENG_920)

    problems = [GemmProblem(4, 4, 4, "d", batch=b) for b in range(1, 101)]

    t0 = time.perf_counter()
    for p in problems:
        iatf.time_gemm(p)
    loop_seconds = time.perf_counter() - t0

    n = len(problems) * CALLS_PER_ITERATION
    obs_seconds = _time_obs_bundles(n)

    assert obs_seconds < 0.02 * loop_seconds, (
        f"disabled instrumentation cost {obs_seconds:.4f}s for {n} call "
        f"bundles vs {loop_seconds:.4f}s loop — exceeds the 2% budget")


def _obs_bundle():
    """One of every disabled-path obs primitive, events included."""
    obs.count("alloc.test")
    obs.observe("alloc.test", 1.0)
    obs.gauge("alloc.test", 7)
    obs.event("alloc.test", detail="x")
    with obs.span("alloc.test"):
        pass
    obs.tock("alloc.test", obs.tick())


def test_disabled_path_allocates_nothing_inside_obs():
    """The disabled fast path must not allocate in any repro.obs file.

    tracemalloc attributes each allocation to the line that made it;
    filtering to the obs package directory isolates the instrumentation
    layer's own cost from the caller's (the kwargs dict for
    ``obs.event(**fields)`` is built by the calling frame and is the
    caller's price, not the library's).
    """
    assert not obs.enabled()
    obs_dir = os.path.dirname(obs.__file__)
    filters = [tracemalloc.Filter(True, os.path.join(obs_dir, "*"))]
    tracemalloc.start()
    try:
        for _ in range(10):                  # warm caches and interning
            _obs_bundle()
        before = tracemalloc.take_snapshot().filter_traces(filters)
        for _ in range(100):
            _obs_bundle()
        after = tracemalloc.take_snapshot().filter_traces(filters)
    finally:
        tracemalloc.stop()
    grown = [s for s in after.compare_to(before, "lineno")
             if s.size_diff > 0]
    assert not grown, (
        "disabled obs calls allocated inside the obs package: "
        + "; ".join(f"{s.traceback} +{s.size_diff}B" for s in grown))


def test_disabled_calls_leave_no_trace():
    reg = obs.Registry()
    old = obs.set_registry(reg)
    try:
        iatf = IATF(KUNPENG_920)
        iatf.time_gemm(GemmProblem(3, 3, 3, "d", batch=16))
        snap = reg.snapshot()
    finally:
        obs.set_registry(old)
    assert snap["counters"] == {}
    assert snap["spans"] == 0
