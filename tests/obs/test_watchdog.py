"""Bench-trajectory watchdog tests: schema, regressions, exit codes."""

import json
from pathlib import Path

import pytest

from repro.obs.__main__ import main
from repro.obs.watch import (SCHEMA_VERSION, WatchResult, check_trajectory,
                             load_trajectory, watch)


def point(gflops=10.0, ts=1.0, backend="compiled", wall=0.05, **over):
    p = {"schema": SCHEMA_VERSION, "machine": "Kunpeng 920",
         "machine_id": "kunpeng-920", "routine": "gemm",
         "backend": backend, "dtype": "s", "shape": [8, 8, 8],
         "batch": 16384, "gflops": gflops, "percent_peak": 30.0,
         "wall_seconds": wall, "repeats": 5, "timestamp": ts}
    p.update(over)
    return p


def write(tmp_path, points, name="BENCH_test.json"):
    path = tmp_path / name
    path.write_text(json.dumps(points))
    return str(path)


class TestChecks:
    def test_healthy_trajectory_passes(self):
        r = check_trajectory([point(10.0, 1.0), point(10.2, 2.0)])
        assert r.ok and r.exit_code == 0

    def test_injected_20pct_regression_flagged(self):
        r = check_trajectory([point(10.0, 1.0), point(8.0, 2.0)])
        assert r.exit_code == 1
        assert "REGRESSION" in r.render()

    def test_within_threshold_tolerated(self):
        r = check_trajectory([point(10.0, 1.0), point(9.5, 2.0)])
        assert r.exit_code == 0

    def test_custom_threshold(self):
        pts = [point(10.0, 1.0), point(9.5, 2.0)]
        assert check_trajectory(pts, gflops_threshold=0.02).exit_code == 1

    def test_compares_against_best_not_latest(self):
        # a slow decay that never dips 10% below the best must still trip
        pts = [point(10.0, 1.0), point(9.4, 2.0), point(8.8, 3.0)]
        assert check_trajectory(pts).exit_code == 1

    def test_series_are_independent(self):
        pts = [point(10.0, 1.0, backend="compiled"),
               point(8.0, 2.0, backend="fused"),   # different series
               point(8.0, 3.0, backend="fused")]
        assert check_trajectory(pts).exit_code == 0

    def test_wall_check_is_opt_in(self):
        pts = [point(10.0, 1.0, wall=0.05), point(10.0, 2.0, wall=0.5)]
        assert check_trajectory(pts).exit_code == 0
        r = check_trajectory(pts, wall_threshold=0.5)
        assert r.exit_code == 1
        assert "wall" in r.regressions[0]

    def test_ratio_floor(self):
        pts = [point(10.0, 1.0, backend="compiled", wall=0.04),
               point(10.0, 1.0, backend="fused", wall=0.05)]
        assert check_trajectory(pts).exit_code == 0
        r = check_trajectory(pts, ratio_floor=0.90)
        assert r.exit_code == 1            # 0.04/0.05 = 0.8 < 0.9
        assert "fell behind" in r.regressions[0]
        pts[0]["wall_seconds"] = 0.06      # 1.2 >= 0.9
        assert check_trajectory(pts, ratio_floor=0.90).exit_code == 0

    def test_mega_floor(self):
        pts = [point(10.0, 1.0, backend="fused", wall=0.05),
               point(10.0, 1.0, backend="megakernel", wall=0.04)]
        assert check_trajectory(pts).exit_code == 0
        r = check_trajectory(pts, mega_floor=1.5)
        assert r.exit_code == 1            # 0.05/0.04 = 1.25 < 1.5
        assert "megakernel lost its edge" in r.regressions[0]
        assert check_trajectory(pts, mega_floor=1.2).exit_code == 0

    def test_mega_floor_notes_missing_backend(self):
        pts = [point(10.0, 1.0, backend="fused", wall=0.05)]
        r = check_trajectory(pts, mega_floor=1.2)
        assert r.exit_code == 0
        assert any("mega floor" in n for n in r.notes)


class TestDrift:
    """Observed-vs-model drift: advisory verdicts, never exit-code
    failures."""

    def test_drift_is_opt_in(self):
        pts = [point(10.0, 1.0, wall=0.01), point(10.0, 2.0, wall=0.05)]
        assert check_trajectory(pts).drifts == []

    def test_growing_wall_model_ratio_flagged(self):
        pts = [point(10.0, 1.0, wall=0.01), point(10.0, 2.0, wall=0.025)]
        r = check_trajectory(pts, drift_threshold=0.5)
        assert len(r.drifts) == 1
        d = r.drifts[0]
        assert d["machine_id"] == "kunpeng-920"
        assert d["routine"] == "gemm" and d["shape"] == [8, 8, 8]
        assert d["ratio"] == pytest.approx(2.5)
        assert "DRIFT" in r.render()

    def test_drift_never_fails_the_run(self):
        pts = [point(10.0, 1.0, wall=0.01), point(10.0, 2.0, wall=0.5)]
        r = check_trajectory(pts, drift_threshold=0.1)
        assert r.drifts and r.exit_code == 0

    def test_within_threshold_quiet(self):
        pts = [point(10.0, 1.0, wall=0.010), point(10.0, 2.0, wall=0.012)]
        assert check_trajectory(pts, drift_threshold=0.5).drifts == []

    def test_unwalled_points_ignored(self):
        pts = [point(10.0, 1.0, wall=None), point(10.0, 2.0, wall=0.05)]
        assert check_trajectory(pts, drift_threshold=0.1).drifts == []

    def test_baseline_is_best_earlier_ratio(self):
        # middle point is the cheapest ratio; drift measured against it
        pts = [point(10.0, 1.0, wall=0.02), point(10.0, 2.0, wall=0.01),
               point(10.0, 3.0, wall=0.018)]
        r = check_trajectory(pts, drift_threshold=0.5)
        assert r.drifts[0]["ratio"] == pytest.approx(1.8)

    def test_drift_emits_event(self):
        from repro import obs

        pts = [point(10.0, 1.0, wall=0.01), point(10.0, 2.0, wall=0.05)]
        with obs.scoped() as reg:
            check_trajectory(pts, drift_threshold=0.5)
            names = [e["name"] for e in reg.events.tail(prefix="watch.")]
        assert "watch.drift" in names


class TestLoading:
    def test_v1_points_skipped_not_fatal(self, tmp_path):
        v1 = {"timestamp": 1.0, "size": 8, "dtype": "s", "batch": 16384,
              "seconds": {"compiled": 0.05}}   # no "schema" key
        path = write(tmp_path, [v1, point(10.0, 1.0), point(10.0, 2.0)])
        r = watch([path])
        assert r.exit_code == 0
        assert r.skipped_v1 == 1

    def test_malformed_point_is_schema_problem(self, tmp_path):
        bad = point(10.0, 1.0)
        del bad["machine_id"]
        path = write(tmp_path, [bad])
        assert watch([path]).exit_code == 2

    def test_wrong_type_is_schema_problem(self, tmp_path):
        path = write(tmp_path, [point(10.0, 1.0, shape="8x8x8")])
        assert watch([path]).exit_code == 2

    def test_unreadable_file_is_schema_problem(self, tmp_path):
        assert watch([str(tmp_path / "missing.json")]).exit_code == 2

    def test_non_list_is_schema_problem(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('{"not": "a list"}')
        assert watch([str(path)]).exit_code == 2

    def test_empty_trajectory_is_schema_problem(self, tmp_path):
        path = write(tmp_path, [])
        assert watch([str(path)]).exit_code == 2

    def test_multiple_files_merge_into_one_series(self, tmp_path):
        p1 = write(tmp_path, [point(10.0, 1.0)], "a.json")
        p2 = write(tmp_path, [point(8.0, 2.0)], "b.json")
        assert watch([p1, p2]).exit_code == 1

    def test_load_reports_problem_location(self, tmp_path):
        result = WatchResult()
        path = write(tmp_path, [point(10.0, 1.0), "nonsense"])
        pts = load_trajectory(path, result)
        assert len(pts) == 1
        assert "[1]" in result.problems[0]


class TestCommittedBaseline:
    """Acceptance: the committed seed passes; a synthetic regression
    on top of it exits nonzero."""

    SEED = str(Path(__file__).resolve().parents[2] / "BENCH_backends.json")

    def test_committed_seed_passes(self):
        r = watch([self.SEED])
        assert r.exit_code == 0, r.render()
        assert r.points_seen >= 4          # one per backend

    def test_synthetic_regression_on_seed_fails(self, tmp_path):
        pts = json.load(open(self.SEED))
        regressed = [dict(p, gflops=p["gflops"] * 0.8,
                          timestamp=p["timestamp"] + 60)
                     for p in pts if "schema" in p]
        path = write(tmp_path, pts + regressed)
        assert watch([path]).exit_code == 1


class TestCli:
    def test_watch_ok(self, tmp_path, capsys):
        path = write(tmp_path, [point(10.0, 1.0), point(10.0, 2.0)])
        assert main(["watch", path]) == 0
        assert "all series healthy" in capsys.readouterr().out

    def test_watch_regression_exit_code(self, tmp_path, capsys):
        path = write(tmp_path, [point(10.0, 1.0), point(8.0, 2.0)])
        assert main(["watch", path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_watch_threshold_flag(self, tmp_path):
        path = write(tmp_path, [point(10.0, 1.0), point(9.5, 2.0)])
        assert main(["watch", path, "--threshold", "0.02"]) == 1
        assert main(["watch", path, "--threshold", "0.10"]) == 0

    def test_watch_drift_flag(self, tmp_path, capsys):
        path = write(tmp_path, [point(10.0, 1.0, wall=0.01),
                                point(10.0, 2.0, wall=0.05)])
        assert main(["watch", path, "--drift-threshold", "0.5"]) == 0
        assert "DRIFT" in capsys.readouterr().out
