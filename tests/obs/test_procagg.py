"""Cross-process telemetry merge: forked shards report back.

The regression these tests pin: ``ParallelBackend(mode="process")``
forks its shard workers, so before :mod:`repro.obs.procagg` every
child-side counter, span, and event vanished into a copy-on-write
registry the parent never saw.  The oracle is thread mode — the same
run sharded over threads records its telemetry directly — so process
mode must now surface the same counters and the same shard-span
structure in the parent registry.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro import IATF, obs
from repro.obs import core, procagg
from repro.obs.spans import SpanRecord

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process mode needs the fork start method")


def run_parallel(mode, workers=2, groups=64):
    """One parallel GEMM run; returns the scoped registry."""
    rng = np.random.default_rng(7)
    a = rng.standard_normal((groups, 4, 4))
    b = rng.standard_normal((groups, 4, 4))
    with obs.scoped() as reg:
        iatf = IATF(backend="parallel", workers=workers, mode=mode)
        iatf.gemm(a, b, np.zeros((groups, 4, 4)), beta=0.0)
    return reg


class TestPayloadRoundTrip:
    def test_counters_histograms_spans_events_merge(self):
        child = core.Registry()
        child.counter("inner.calls").inc(5)
        child.counter("inner.level").set(3)              # a gauge
        child.histogram("inner.ms").observe(1.5)
        child.histogram("inner.ms").observe(2.5)
        child.record_span(SpanRecord(
            name="child.root", start_us=10.0, dur_us=5.0, tid=1, depth=0,
            args={}, trace_id="t1", span_id="s1", parent_id="s0"))
        child.record_span(SpanRecord(
            name="child.leaf", start_us=11.0, dur_us=1.0, tid=1, depth=1,
            args={}, trace_id="t1", span_id="s2", parent_id="s1"))
        child.events.emit("child.event", "info", {"k": 1},
                          trace_id="t1", span_id="s2")
        payload = procagg.child_capture(shard=0, registry=child)

        parent = core.Registry()
        parent.counter("inner.calls").inc(2)
        procagg.merge_child(payload, registry=parent,
                            carrier=("T", "S", 0))
        assert parent.counter("inner.calls").value == 7   # delta-folded
        assert parent.counter("inner.level").value == 3   # level, not sum
        h = parent.histogram("inner.ms")
        assert h.count == 2 and h.total == pytest.approx(4.0)

        pid = payload["pid"]
        spans = {s.span_id: s for s in parent.spans}
        root = spans[f"p{pid}.s1"]
        leaf = spans[f"p{pid}.s2"]
        # the root re-parents under the carrier and marks the seam; the
        # intra-payload child link is rewritten to match the new ids
        assert root.parent_id == "S" and root.trace_id == "T"
        assert root.args.get("shard_root") is True
        assert leaf.parent_id == f"p{pid}.s1" and leaf.trace_id == "T"
        assert root.pid == pid == leaf.pid
        ev = parent.events.tail(10)[-1]
        assert ev["name"] == "child.event"
        assert ev["trace_id"] == "T" and ev["span_id"] == f"p{pid}.s2"

    def test_merge_without_carrier_prefixes_traces(self):
        child = core.Registry()
        child.record_span(SpanRecord(
            name="child.root", start_us=0.0, dur_us=1.0, tid=1, depth=0,
            args={}, trace_id="t1", span_id="s1", parent_id=""))
        payload = procagg.child_capture(registry=child)
        parent = core.Registry()
        procagg.merge_child(payload, registry=parent)
        (span,) = [s for s in parent.spans if s.name == "child.root"]
        pid = payload["pid"]
        assert span.trace_id == f"p{pid}.t1"
        assert span.parent_id is None

    def test_child_begin_installs_fresh_registry(self):
        with obs.scoped() as outer:
            outer.counter("pre.fork").inc()
            fresh = procagg.child_begin()
            try:
                assert core.get_registry() is fresh
                assert fresh.snapshot()["counters"] == {}
            finally:
                core.set_registry(outer)


@fork_only
class TestProcessModeParity:
    """Process mode must surface what thread mode surfaces."""

    def test_inner_backend_counters_reach_the_parent(self):
        thread_reg = run_parallel("thread")
        process_reg = run_parallel("process")
        t = thread_reg.snapshot()["counters"]
        p = process_reg.snapshot()["counters"]
        # every inner-backend counter the threads recorded must also be
        # visible (with the same totals) after the process-mode merge
        inner = {k: v for k, v in t.items()
                 if k.startswith(("backend.", "engine."))}
        assert inner, "thread-mode oracle recorded no inner counters"
        for name, value in inner.items():
            assert p.get(name) == value, \
                f"process mode lost counter {name}"
        assert p.get("obs.procagg.merged", 0) >= 2

    def test_shard_spans_reach_the_parent_with_foreign_pids(self):
        reg = run_parallel("process")
        shards = [s for s in reg.spans
                  if s.name == "backend.parallel.shard"]
        assert len(shards) >= 2
        own = os.getpid()
        assert all(s.pid not in (0, own) for s in shards)
        assert len({s.pid for s in shards}) >= 2
        # every shard root is parented under the parent-side carrier
        span_ids = {s.span_id for s in reg.spans}
        for s in shards:
            assert s.args.get("shard_root") is True
            assert s.parent_id in span_ids

    def test_merged_trace_is_one_valid_multi_pid_chrome_trace(self):
        reg = run_parallel("process")
        trace = obs.chrome_trace(reg)
        obs.validate_chrome_trace(trace)
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) >= 3          # the parent + two shard workers
        assert len([e for e in events if e["ph"] == "f"]) >= 2


@fork_only
class TestServePumpPropagation:
    """Trace context crosses submit -> pump thread -> forked shard."""

    def test_request_spans_join_the_flush_trace_across_processes(self):
        rng = np.random.default_rng(11)
        a = rng.standard_normal((4, 4))
        from repro.serve import BlasService, Request
        with obs.scoped() as reg:
            iatf = IATF(backend="parallel", workers=2, mode="process")
            with BlasService(iatf=iatf, max_batch=4,
                             max_wait_ms=0.5) as svc:
                futs = [svc.submit(Request.gemm(a, a)) for _ in range(4)]
                for f in futs:
                    f.result(timeout=120.0)
        requests = [s for s in reg.spans if s.name == "serve.request"]
        flushes = [s for s in reg.spans if s.name == "serve.flush"]
        shards = [s for s in reg.spans
                  if s.name == "backend.parallel.shard"]
        assert requests and flushes and shards
        # the pump re-attached each request's carrier: every flush span
        # parents into a submit-side request trace...
        request_traces = {s.trace_id for s in requests}
        assert all(f.trace_id in request_traces for f in flushes)
        # ...and the forked shards' re-homed spans join the same traces
        assert all(s.trace_id in request_traces for s in shards)
        obs.validate_chrome_trace(obs.chrome_trace(reg))
