"""Span recording and Chrome-trace export/schema tests."""

import json

import pytest

from repro import obs


class TestSpanRecording:
    def test_span_records_name_and_duration(self):
        with obs.scoped() as reg:
            with obs.span("plan.gemm", autotune=False):
                pass
        assert len(reg.spans) == 1
        s = reg.spans[0]
        assert s.name == "plan.gemm"
        assert s.dur_us >= 0
        assert s.args == {"autotune": False}

    def test_nesting_depth_tracked(self):
        with obs.scoped() as reg:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        by_name = {s.name: s for s in reg.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_inner_span_closes_first(self):
        with obs.scoped() as reg:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        assert [s.name for s in reg.spans] == ["inner", "outer"]

    def test_set_attaches_args_mid_span(self):
        with obs.scoped() as reg:
            with obs.span("s") as sp:
                sp.set(result=42)
        assert reg.spans[0].args["result"] == 42

    def test_null_span_supports_same_protocol(self):
        sp = obs.span("anything")           # disabled by default
        with sp as s:
            s.set(ignored=True)             # must not raise


class TestChromeTrace:
    def test_export_round_trips_json(self, tmp_path):
        with obs.scoped() as reg:
            with obs.span("plan.gemm"):
                with obs.span("codegen.generate"):
                    pass
            path = tmp_path / "run.trace.json"
            obs.write_chrome_trace(path, registry=reg)
        with open(path) as f:
            trace = json.load(f)
        obs.validate_chrome_trace(trace)    # schema-checked
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert names == ["codegen.generate", "plan.gemm"]

    def test_events_carry_required_fields(self):
        with obs.scoped() as reg:
            with obs.span("x", detail="hi"):
                pass
            trace = obs.chrome_trace(reg)
        ev = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            assert key in ev
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert ev["args"] == {"detail": "hi"}

    def test_category_is_name_prefix(self):
        with obs.scoped() as reg:
            with obs.span("engine.time_plan"):
                pass
            trace = obs.chrome_trace(reg)
        ev = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert ev["cat"] == "engine"


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            obs.validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            obs.validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_negative_timestamps(self):
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": -1.0,
                                "dur": 0.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(bad)

    def test_rejects_unknown_phase(self):
        bad = {"traceEvents": [{"name": "x", "ph": "??"}]}
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(bad)

    def test_accepts_properly_nested_begin_end_pairs(self):
        good = {"traceEvents": [
            {"name": "outer", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "inner", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
            {"name": "inner", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "outer", "ph": "E", "ts": 3.0, "pid": 1, "tid": 1}]}
        obs.validate_chrome_trace(good)     # must not raise

    def test_rejects_end_without_begin(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(bad)

    def test_rejects_improperly_nested_pairs(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 3.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="nested"):
            obs.validate_chrome_trace(bad)

    def test_rejects_negative_span_duration(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 5.0, "pid": 1, "tid": 1},
            {"name": "x", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="[Nn]egative"):
            obs.validate_chrome_trace(bad)

    def test_rejects_unclosed_begin(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(bad)

    def test_separate_threads_have_separate_stacks(self):
        good = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1.0, "pid": 1, "tid": 2},
            {"name": "a", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 3.0, "pid": 1, "tid": 2}]}
        obs.validate_chrome_trace(good)     # per-(pid,tid), not global

    def test_extra_events_merged_into_export(self):
        extra = [{"name": "modeled", "ph": "X", "ts": 0.0, "dur": 5.0,
                  "pid": 0, "tid": 99, "cat": "profile", "args": {}}]
        with obs.scoped() as reg:
            with obs.span("wall"):
                pass
            trace = obs.chrome_trace(reg, extra_events=extra)
        obs.validate_chrome_trace(trace)
        names = [e["name"] for e in trace["traceEvents"]]
        assert "wall" in names and "modeled" in names

    def test_accepts_exporter_output_for_real_workload(self, tmp_path):
        from repro import IATF
        from repro.types import GemmProblem
        with obs.scoped() as reg:
            IATF().time_gemm(GemmProblem(4, 4, 4, "d", batch=32))
            path = obs.write_chrome_trace(tmp_path / "w.trace.json",
                                          registry=reg)
        with open(path) as f:
            obs.validate_chrome_trace(json.load(f))
        assert len(reg.spans) > 0
