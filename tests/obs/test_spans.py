"""Span recording and Chrome-trace export/schema tests."""

import json

import pytest

from repro import obs


class TestSpanRecording:
    def test_span_records_name_and_duration(self):
        with obs.scoped() as reg:
            with obs.span("plan.gemm", autotune=False):
                pass
        assert len(reg.spans) == 1
        s = reg.spans[0]
        assert s.name == "plan.gemm"
        assert s.dur_us >= 0
        assert s.args == {"autotune": False}

    def test_nesting_depth_tracked(self):
        with obs.scoped() as reg:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        by_name = {s.name: s for s in reg.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_inner_span_closes_first(self):
        with obs.scoped() as reg:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        assert [s.name for s in reg.spans] == ["inner", "outer"]

    def test_set_attaches_args_mid_span(self):
        with obs.scoped() as reg:
            with obs.span("s") as sp:
                sp.set(result=42)
        assert reg.spans[0].args["result"] == 42

    def test_null_span_supports_same_protocol(self):
        sp = obs.span("anything")           # disabled by default
        with sp as s:
            s.set(ignored=True)             # must not raise


class TestTraceContext:
    def test_root_span_starts_a_trace(self):
        with obs.scoped() as reg:
            with obs.span("root"):
                pass
        s = reg.spans[0]
        assert s.trace_id.startswith("t")
        assert s.span_id.startswith("s")
        assert s.parent_id is None

    def test_nested_spans_share_trace_and_chain_parents(self):
        with obs.scoped() as reg:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        by_name = {s.name: s for s in reg.spans}
        assert by_name["inner"].trace_id == by_name["outer"].trace_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_sibling_roots_get_distinct_traces(self):
        with obs.scoped() as reg:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        assert reg.spans[0].trace_id != reg.spans[1].trace_id

    def test_no_context_outside_any_span(self):
        with obs.scoped():
            assert obs.current_context() is None
            with obs.span("s"):
                assert obs.current_context() is not None
            assert obs.current_context() is None

    def test_carrier_attach_joins_a_thread_to_the_trace(self):
        import threading

        def worker(car, results):
            with obs.attach(car):
                with obs.span("shard"):
                    pass
            results.append(True)

        with obs.scoped() as reg:
            results = []
            with obs.span("run"):
                car = obs.carrier()
                t = threading.Thread(target=worker, args=(car, results))
                t.start()
                t.join()
        assert results == [True]
        by_name = {s.name: s for s in reg.spans}
        assert by_name["shard"].trace_id == by_name["run"].trace_id
        assert by_name["shard"].parent_id == by_name["run"].span_id

    def test_attach_restores_previous_context(self):
        with obs.scoped():
            with obs.span("a"):
                before = obs.current_context()
                with obs.attach(("tX", "sX", 0)):
                    assert obs.current_context() == ("tX", "sX", 0)
                assert obs.current_context() == before

    def test_spans_on_different_threads_get_distinct_small_tids(self):
        import threading

        with obs.scoped() as reg:
            with obs.span("main-thread"):
                pass
            t = threading.Thread(target=lambda: obs.span("worker").__enter__()
                                 .__exit__(None, None, None))
            t.start()
            t.join()
        tids = {s.tid for s in reg.spans}
        assert len(tids) == 2
        assert all(isinstance(t, int) and t >= 1 for t in tids)

    def test_parallel_backend_shards_join_the_run_trace(self):
        import numpy as np

        from repro import IATF
        with obs.scoped() as reg:
            iatf = IATF(backend="parallel", workers=2)
            rng = np.random.default_rng(0)
            a = rng.standard_normal((64, 4, 4))
            b = rng.standard_normal((64, 4, 4))
            iatf.gemm(a, b, np.zeros((64, 4, 4)), beta=0.0)
            trace = obs.chrome_trace(reg)
        obs.validate_chrome_trace(trace)
        shards = [s for s in reg.spans
                  if s.name == "backend.parallel.shard"]
        kernels = [s for s in reg.spans if s.name == "engine.kernels"]
        assert len(shards) >= 2
        assert kernels, "parallel run must record the engine.kernels span"
        span_ids = {s.span_id for s in reg.spans}
        run_trace = kernels[0].trace_id
        for s in shards:
            assert s.trace_id == run_trace
            assert s.parent_id in span_ids


class TestChromeTrace:
    def test_export_round_trips_json(self, tmp_path):
        with obs.scoped() as reg:
            with obs.span("plan.gemm"):
                with obs.span("codegen.generate"):
                    pass
            path = tmp_path / "run.trace.json"
            obs.write_chrome_trace(path, registry=reg)
        with open(path) as f:
            trace = json.load(f)
        obs.validate_chrome_trace(trace)    # schema-checked
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert names == ["codegen.generate", "plan.gemm"]

    def test_events_carry_required_fields(self):
        with obs.scoped() as reg:
            with obs.span("x", detail="hi"):
                pass
            trace = obs.chrome_trace(reg)
        ev = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            assert key in ev
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert ev["args"]["detail"] == "hi"
        # exported args also carry the trace context for grouping
        assert ev["args"]["trace_id"].startswith("t")
        assert ev["args"]["span_id"].startswith("s")

    def test_category_is_name_prefix(self):
        with obs.scoped() as reg:
            with obs.span("engine.time_plan"):
                pass
            trace = obs.chrome_trace(reg)
        ev = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert ev["cat"] == "engine"


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            obs.validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            obs.validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_negative_timestamps(self):
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": -1.0,
                                "dur": 0.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(bad)

    def test_rejects_unknown_phase(self):
        bad = {"traceEvents": [{"name": "x", "ph": "??"}]}
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(bad)

    def test_accepts_properly_nested_begin_end_pairs(self):
        good = {"traceEvents": [
            {"name": "outer", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "inner", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
            {"name": "inner", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "outer", "ph": "E", "ts": 3.0, "pid": 1, "tid": 1}]}
        obs.validate_chrome_trace(good)     # must not raise

    def test_rejects_end_without_begin(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(bad)

    def test_rejects_improperly_nested_pairs(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 3.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="nested"):
            obs.validate_chrome_trace(bad)

    def test_rejects_negative_span_duration(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 5.0, "pid": 1, "tid": 1},
            {"name": "x", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="[Nn]egative"):
            obs.validate_chrome_trace(bad)

    def test_rejects_unclosed_begin(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(bad)

    def test_separate_threads_have_separate_stacks(self):
        good = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1.0, "pid": 1, "tid": 2},
            {"name": "a", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 3.0, "pid": 1, "tid": 2}]}
        obs.validate_chrome_trace(good)     # per-(pid,tid), not global

    def test_counter_and_instant_events_need_ts_and_ids(self):
        for ph in ("C", "i"):
            good = {"traceEvents": [
                {"name": "x", "ph": ph, "ts": 1.0, "pid": 1, "tid": 1}]}
            obs.validate_chrome_trace(good)  # must not raise
            for bad in (
                    {"name": "x", "ph": ph, "pid": 1, "tid": 1},
                    {"name": "x", "ph": ph, "ts": -1.0, "pid": 1,
                     "tid": 1},
                    {"name": "x", "ph": ph, "ts": 1.0, "tid": 1},
                    {"name": "x", "ph": ph, "ts": 1.0, "pid": 1},
                    {"name": "x", "ph": ph, "ts": 1.0, "pid": "p",
                     "tid": 1}):
                with pytest.raises(ValueError):
                    obs.validate_chrome_trace({"traceEvents": [bad]})

    def test_metadata_events_stay_exempt(self):
        good = {"traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "shard-0"}}]}
        obs.validate_chrome_trace(good)      # no ts required for M

    def test_extra_events_merged_into_export(self):
        extra = [{"name": "modeled", "ph": "X", "ts": 0.0, "dur": 5.0,
                  "pid": 0, "tid": 99, "cat": "profile", "args": {}}]
        with obs.scoped() as reg:
            with obs.span("wall"):
                pass
            trace = obs.chrome_trace(reg, extra_events=extra)
        obs.validate_chrome_trace(trace)
        names = [e["name"] for e in trace["traceEvents"]]
        assert "wall" in names and "modeled" in names

    def test_accepts_exporter_output_for_real_workload(self, tmp_path):
        from repro import IATF
        from repro.types import GemmProblem
        with obs.scoped() as reg:
            IATF().time_gemm(GemmProblem(4, 4, 4, "d", batch=32))
            path = obs.write_chrome_trace(tmp_path / "w.trace.json",
                                          registry=reg)
        with open(path) as f:
            obs.validate_chrome_trace(json.load(f))
        assert len(reg.spans) > 0


class TestMultiPidValidator:
    """Merged multi-pid traces: flow binding and shard time bounds."""

    ROOT = {"name": "shard", "ph": "X", "ts": 10.0, "dur": 10.0,
            "pid": 7, "tid": 1, "args": {"shard_root": True}}

    def test_accepts_flow_pair_and_bounded_shard_events(self):
        good = {"traceEvents": [
            {"name": "shard", "ph": "s", "ts": 5.0, "pid": 1, "tid": 1,
             "id": "p7.s1", "cat": "flow"},
            dict(self.ROOT),
            {"name": "shard", "ph": "f", "ts": 10.0, "pid": 7, "tid": 1,
             "id": "p7.s1", "cat": "flow", "bp": "e"},
            {"name": "inner", "ph": "X", "ts": 12.0, "dur": 3.0,
             "pid": 7, "tid": 1}]}
        obs.validate_chrome_trace(good)      # must not raise

    def test_rejects_flow_event_without_id(self):
        bad = {"traceEvents": [
            {"name": "shard", "ph": "s", "ts": 5.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="without an id"):
            obs.validate_chrome_trace(bad)

    def test_rejects_flow_finish_without_start(self):
        bad = {"traceEvents": [
            {"name": "shard", "ph": "f", "ts": 5.0, "pid": 7, "tid": 1,
             "id": "nope"}]}
        with pytest.raises(ValueError, match="no matching start"):
            obs.validate_chrome_trace(bad)

    def test_rejects_flow_running_backwards(self):
        bad = {"traceEvents": [
            {"name": "shard", "ph": "s", "ts": 9.0, "pid": 1, "tid": 1,
             "id": "x"},
            {"name": "shard", "ph": "f", "ts": 5.0, "pid": 7, "tid": 1,
             "id": "x"}]}
        with pytest.raises(ValueError, match="backwards"):
            obs.validate_chrome_trace(bad)

    def test_rejects_child_event_escaping_shard_bounds(self):
        # pid 7 carries a shard root [10, 20]; an event at [25, 27] on
        # the same pid claims time the shard never spanned — stitched
        # from an incomparable clock
        bad = {"traceEvents": [
            dict(self.ROOT),
            {"name": "stray", "ph": "X", "ts": 25.0, "dur": 2.0,
             "pid": 7, "tid": 1}]}
        with pytest.raises(ValueError, match="escapes its shard"):
            obs.validate_chrome_trace(bad)

    def test_pids_without_shard_roots_are_unconstrained(self):
        good = {"traceEvents": [
            {"name": "anywhere", "ph": "X", "ts": 999.0, "dur": 1.0,
             "pid": 1, "tid": 1}]}
        obs.validate_chrome_trace(good)      # no roots, no bounds

    def test_per_pid_tid_namespaces_do_not_collide(self):
        # the same tid on two pids is two tracks: B/E nesting must be
        # checked per (pid, tid), so interleaving across pids is legal
        good = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1.0, "pid": 2, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 3.0, "pid": 2, "tid": 1}]}
        obs.validate_chrome_trace(good)
