"""Structured-event ring, file sink rotation, and the event() helper."""

import json
import os

import pytest

from repro import obs
from repro.obs.events import EventLog, FileSink


class TestEventLog:
    def test_emit_and_tail_oldest_first(self):
        log = EventLog()
        log.emit("a", "info", {"x": 1})
        log.emit("b", "warn")
        records = log.tail(10)
        assert [r["name"] for r in records] == ["a", "b"]
        assert records[0]["fields"] == {"x": 1}
        assert records[0]["ts"] > 0

    def test_ring_bounds_memory_and_counts_drops(self):
        log = EventLog(ring=3)
        for i in range(5):
            log.emit(f"e{i}")
        assert len(log) == 3
        assert [r["name"] for r in log.tail(10)] == ["e2", "e3", "e4"]
        assert log.stats() == {"logged": 5, "dropped": 2}

    def test_tail_filters_level_and_above(self):
        log = EventLog()
        for level in ("debug", "info", "warn", "error"):
            log.emit(level, level)
        assert [r["name"] for r in log.tail(10, level="warn")] == \
            ["warn", "error"]

    def test_unknown_level_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event level"):
            log.emit("x", "fatal")
        with pytest.raises(ValueError, match="unknown event level"):
            log.tail(level="verbose")

    def test_trace_context_stored_when_given(self):
        log = EventLog()
        log.emit("with", trace_id="t1", span_id="s2")
        log.emit("without")
        with_ctx, without = log.tail(10)
        assert with_ctx["trace_id"] == "t1" and with_ctx["span_id"] == "s2"
        assert "trace_id" not in without


class TestFileSink:
    def test_events_append_as_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.attach_sink(FileSink(str(path)))
        log.emit("a", "info", {"x": 1})
        log.emit("b")
        log.detach_sink().close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b"]

    def test_rotation_bounds_the_active_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.attach_sink(FileSink(str(path), max_bytes=200, backups=2))
        for i in range(40):
            log.emit("fill", "info", {"i": i, "pad": "x" * 40})
        log.detach_sink().close()
        assert os.path.getsize(path) < 400
        assert os.path.exists(f"{path}.1")
        backups = [p for p in os.listdir(tmp_path)
                   if p.startswith("events.jsonl.")]
        assert len(backups) <= 2             # oldest rotated out

    def test_detach_stops_writing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.attach_sink(FileSink(str(path)))
        log.emit("kept")
        log.detach_sink().close()
        log.emit("dropped-from-file")
        assert len(path.read_text().splitlines()) == 1
        assert len(log) == 2                 # the ring still has both

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FileSink(str(tmp_path / "e"), max_bytes=0)
        with pytest.raises(ValueError):
            FileSink(str(tmp_path / "e"), backups=-1)
        with pytest.raises(ValueError):
            EventLog(ring=0)


class TestEventHelper:
    def test_disabled_event_is_a_no_op(self):
        reg = obs.Registry()
        old = obs.set_registry(reg)
        try:
            assert not obs.enabled()
            obs.event("tuning.fallback", reason="nope")
        finally:
            obs.set_registry(old)
        assert reg.snapshot()["events"] == {"logged": 0, "dropped": 0}

    def test_enabled_event_lands_in_registry_ring(self):
        with obs.scoped() as reg:
            obs.event("tuning.fallback", level="warn", op="gemm")
        rec = reg.events.tail(1)[0]
        assert rec["name"] == "tuning.fallback"
        assert rec["level"] == "warn"
        assert rec["fields"] == {"op": "gemm"}

    def test_event_inside_span_carries_trace_context(self):
        with obs.scoped() as reg:
            with obs.span("plan.gemm"):
                obs.event("plan_cache.evict", key="k")
            obs.event("outside")
        inside, outside = reg.events.tail(2)
        assert inside["trace_id"] == reg.spans[0].trace_id
        assert inside["span_id"] == reg.spans[0].span_id
        assert "trace_id" not in outside

    def test_overhead_self_accounting(self):
        with obs.scoped() as reg:
            obs.event("x")
            obs.event("y")
        snap = reg.snapshot()
        assert snap["counters"]["obs.overhead.events"] == 2
        assert snap["counters"]["obs.overhead.events.ms"] >= 0.0

    def test_event_stats_surface_in_snapshot(self):
        with obs.scoped() as reg:
            obs.event("one")
        assert reg.snapshot()["events"]["logged"] == 1
