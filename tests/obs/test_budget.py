"""Latency budgets: telescoping conservation, ordering, the ledger.

The load-bearing test is the hypothesis property: for *any* sequence of
non-negative stage gaps — spanning twelve orders of magnitude, the
worst case for float summation — the stage sum reproduces the
end-to-end wall within the relative epsilon, because the marks
telescope and every intermediate cancels exactly.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetError
from repro.obs.budget import EPSILON, STAGES, Budget, BudgetLedger


def stamped(gaps, t0=100.0):
    """A budget whose stage i took ``gaps[i]`` seconds."""
    b = Budget(t0=t0)
    t = t0
    for stage, gap in zip(STAGES, gaps):
        t += gap
        b.stamp(stage, t)
    return b


class TestConservation:
    @given(gaps=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                  allow_infinity=False),
        min_size=len(STAGES), max_size=len(STAGES)),
        t0=st.floats(min_value=0.0, max_value=1e6))
    @settings(max_examples=200, deadline=None)
    def test_stage_sum_equals_total_for_any_gaps(self, gaps, t0):
        b = stamped(gaps, t0=t0)
        assert b.closed
        b.check()            # raises on violation
        assert b.conservation_error() <= EPSILON * max(1.0, b.total)

    @given(gaps=st.lists(
        st.sampled_from([0.0, 1e-9, 3e-7, 1e-3, 0.5, 250.0]),
        min_size=len(STAGES), max_size=len(STAGES)))
    @settings(max_examples=100, deadline=None)
    def test_mixed_magnitude_gaps_still_conserve(self, gaps):
        b = stamped(gaps)
        b.check()
        # and each stage reads back its own gap (clock never backwards,
        # so the gap is preserved exactly: same floats subtracted)
        stages = b.stages()
        assert math.isclose(sum(stages.values()), b.total,
                            rel_tol=1e-9, abs_tol=1e-9)

    def test_real_clock_budget_conserves(self):
        b = Budget()
        for stage in STAGES:
            b.stamp(stage)
        b.check()
        assert b.total >= 0.0


class TestOrderingAndLifecycle:
    def test_out_of_order_stamp_raises(self):
        b = Budget()
        with pytest.raises(BudgetError, match="out of order"):
            b.stamp("execute")

    def test_repeat_stamp_raises(self):
        b = Budget()
        b.stamp("admit")
        with pytest.raises(BudgetError, match="out of order"):
            b.stamp("admit")

    def test_unknown_stage_raises(self):
        with pytest.raises(BudgetError, match="unknown budget stage"):
            Budget().stamp("teleport")

    def test_backwards_timestamp_is_clamped_never_negative(self):
        b = Budget(t0=10.0)
        b.stamp("admit", 11.0)
        b.stamp("coalesce_wait", 5.0)        # earlier than the last mark
        stages = b.stages()
        assert stages["coalesce_wait"] == 0.0
        assert all(v >= 0.0 for v in stages.values())

    def test_check_on_open_budget_names_missing_stages(self):
        b = Budget()
        b.stamp("admit")
        with pytest.raises(BudgetError, match="never stamped"):
            b.check()

    def test_abort_closes_with_zero_width_remainder(self):
        b = Budget(t0=0.0)
        b.stamp("admit", 1.0)
        b.annotate(error="ValueError")
        b.abort(2.0)
        assert b.closed
        b.check()
        stages = b.stages()
        assert stages["admit"] == 1.0
        assert stages["coalesce_wait"] == 1.0    # up to the abort instant
        assert stages["execute"] == 0.0
        assert b.flags == {"error": "ValueError"}

    def test_to_dict_reports_milliseconds_and_flags(self):
        b = stamped([0.001] * len(STAGES), t0=0.0)
        b.annotate(plan_cache="hit")
        d = b.to_dict()
        assert set(d) == {"stages_ms", "total_ms", "flags"}
        assert d["flags"] == {"plan_cache": "hit"}
        assert d["total_ms"] == pytest.approx(6.0)
        assert d["stages_ms"]["plan"] == pytest.approx(1.0)


class TestLedger:
    def test_aggregates_per_group(self):
        led = BudgetLedger()
        led.record("alice", stamped([0.1] * len(STAGES), t0=0.0))
        led.record("alice", stamped([0.3] * len(STAGES), t0=0.0))
        led.record("bob", stamped([0.2] * len(STAGES), t0=0.0))
        s = led.summary()
        assert s["recorded"] == 3
        assert s["violations"] == 0
        alice = s["groups"]["alice"]
        assert alice["count"] == 2
        assert alice["mean_ms"] == pytest.approx(1.2e3)
        assert alice["max_ms"] == pytest.approx(1.8e3)
        # stage shares partition the group's wall
        assert sum(alice["stage_share"].values()) == pytest.approx(1.0)

    def test_open_budget_counts_as_violation_but_still_aggregates(self):
        led = BudgetLedger()
        b = Budget(t0=0.0)
        b.stamp("admit", 1.0)
        led.record("alice", b)
        s = led.summary()
        assert s["violations"] == 1
        assert s["groups"]["alice"]["count"] == 1

    def test_cardinality_folds_into_overflow_group(self):
        led = BudgetLedger(max_groups=2)
        for name in ("a", "b", "c", "d"):
            led.record(name, stamped([0.0] * len(STAGES)))
        s = led.summary()
        assert set(s["groups"]) == {"a", "b", BudgetLedger.OVERFLOW}
        assert s["groups"][BudgetLedger.OVERFLOW]["count"] == 2

    def test_reset_clears_everything(self):
        led = BudgetLedger()
        led.record("a", stamped([0.0] * len(STAGES)))
        led.reset()
        s = led.summary()
        assert s == {"recorded": 0, "violations": 0, "groups": {}}
