"""Attribution-profiler tests: conservation, roofline, artifacts, drift."""

import json

import pytest

from repro import obs
from repro.codegen.registry import KernelRegistry
from repro.errors import ProfileError
from repro.machine.machines import KUNPENG_920
from repro.obs.profile import apportion
from repro.runtime.plan import build_gemm_plan, build_trsm_plan
from repro.types import GemmProblem, TrsmProblem

DTYPES = ("s", "d", "c", "z")


@pytest.fixture(scope="module")
def registry():
    return KernelRegistry(KUNPENG_920)


class TestApportion:
    def test_sums_exactly(self):
        weights = [3, 1, 7, 2, 11]
        parts = apportion(1000003, weights)
        assert sum(parts) == 1000003
        assert all(p >= 0 for p in parts)

    def test_proportional(self):
        parts = apportion(100, [1, 1, 2])
        assert parts == [25, 25, 50]

    def test_deterministic_tie_break(self):
        assert apportion(5, [1, 1, 1]) == apportion(5, [1, 1, 1])
        assert sum(apportion(5, [1, 1, 1])) == 5

    def test_rejects_bad_inputs(self):
        with pytest.raises(ProfileError):
            apportion(10, [])
        with pytest.raises(ProfileError):
            apportion(10, [1, 0])
        with pytest.raises(ProfileError):
            apportion(-1, [1])


class TestConservation:
    """Attributed cycles sum exactly to the cycle model's totals."""

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("force_pack", [False, True],
                             ids=["nopack-eligible", "forced-pack"])
    @pytest.mark.parametrize("stream", ["raw", "fused", "megakernel"])
    def test_gemm_exact(self, registry, dtype, force_pack, stream):
        # n=2 qualifies for the no-pack fast path; force_pack covers the
        # packed alternative on the same shape
        p = GemmProblem(2, 2, 2, dtype, batch=256)
        plan = build_gemm_plan(p, KUNPENG_920, registry,
                               force_pack=force_pack)
        prof = obs.profile_plan(plan, stream=stream)
        budget = prof.timing.kernel_cycles_per_group * plan.groups
        assert sum(c.cycles for c in prof.classes.values()) == budget
        assert prof.total_cycles == prof.timing.total_cycles
        prof.check()                      # and the built-in invariant

    @pytest.mark.parametrize("dtype", ["s", "z"])
    @pytest.mark.parametrize("stream", ["raw", "fused", "megakernel"])
    def test_trsm_exact(self, registry, dtype, stream):
        p = TrsmProblem(8, 8, dtype, batch=128)
        plan = build_trsm_plan(p, KUNPENG_920, registry)
        prof = obs.profile_plan(plan, stream=stream)
        budget = prof.timing.kernel_cycles_per_group * plan.groups
        assert sum(c.cycles for c in prof.classes.values()) == budget
        assert prof.total_cycles == prof.timing.total_cycles

    def test_kernel_split_conserves_too(self, registry):
        p = GemmProblem(9, 9, 9, "d", batch=256)   # multiple kernels
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        prof = obs.profile_plan(plan, stream="raw")
        assert len(prof.kernels) >= 2
        budget = prof.kernel_cycle_budget
        assert sum(k.cycles for k in prof.kernels.values()) == budget
        for k in prof.kernels.values():
            assert sum(k.classes.values()) == k.cycles

    def test_fused_stream_has_no_kernel_split(self, registry):
        p = GemmProblem(8, 8, 8, "s", batch=256)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        prof = obs.profile_plan(plan, stream="fused")
        assert prof.kernels == {}
        assert "MACC" in prof.classes     # macro-ops visible as a class

    def test_megakernel_stream_recovers_kernel_split(self, registry):
        # macro-op fusion blurs kernel boundaries, but the trace
        # segments still know theirs: the megakernel stream must give
        # back per-kernel attribution with total coverage
        p = GemmProblem(9, 9, 9, "d", batch=256)   # multiple kernels
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        prof = obs.profile_plan(plan, stream="megakernel")
        assert len(prof.kernels) >= 2
        assert sum(k.cycles for k in prof.kernels.values()) \
            == prof.kernel_cycle_budget

    def test_unknown_stream_rejected(self, registry):
        p = GemmProblem(4, 4, 4, "d", batch=64)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        with pytest.raises(ProfileError):
            obs.profile_plan(plan, stream="optimized")


class TestHeadlineReport:
    """Acceptance: the batch-16384 sgemm8 ProfileReport."""

    @pytest.fixture(scope="class")
    def report(self, registry):
        p = GemmProblem(8, 8, 8, "s", batch=16384)
        plan = build_gemm_plan(p, KUNPENG_920, registry)
        return obs.profile_report(plan)

    def test_classes_sum_exactly_to_modeled_total(self, report):
        prof = report.profile
        assert (sum(c.cycles for c in prof.classes.values())
                == prof.timing.kernel_cycles_per_group * prof.groups)
        assert prof.total_cycles == prof.timing.total_cycles

    def test_percent_of_peak_against_machine(self, report):
        prof = report.profile
        peak = KUNPENG_920.peak_gflops("s")
        assert prof.percent_of_peak == pytest.approx(
            100.0 * prof.gflops / peak)
        assert 0 < prof.percent_of_peak < 100
        assert "% of peak" in report.render()

    def test_render_mentions_conservation_and_bound(self, report):
        text = report.render()
        assert "conserved" in text
        assert report.profile.bound in text
        assert "FMLA" in text and "LD" in text

    def test_json_round_trip(self, report, tmp_path):
        d = json.loads(json.dumps(report.to_dict()))
        assert d["machine_id"] == "kunpeng-920"
        assert d["roofline"]["peak_gflops"] == KUNPENG_920.peak_gflops("s")
        assert sum(c["cycles"] for c in d["classes"]) \
            == d["kernel_cycle_budget"]

    def test_collapsed_stacks_conserve_compute(self, report):
        total = 0
        for line in report.collapsed().strip().splitlines():
            frames, count = line.rsplit(" ", 1)
            assert frames.startswith("gemm[raw];")
            if ";compute;" in frames:
                total += int(count)
        assert total == report.profile.kernel_cycle_budget

    def test_trace_events_merge_and_validate(self, report):
        with obs.scoped() as reg:
            with obs.span("plan.gemm"):
                pass
            trace = obs.chrome_trace(reg, extra_events=report.trace_events())
        obs.validate_chrome_trace(trace)
        names = [e["name"] for e in trace["traceEvents"]]
        assert "plan.gemm" in names            # wall spans kept
        assert "profile.compute" in names      # modeled track merged


class TestRoofline:
    def test_machine_ridge_is_issue_rule_derived(self):
        m = KUNPENG_920
        # 2 FMA x 4 lanes x 2 flops / (1 mem slot x 16 B) = 1 flop/byte
        assert m.peak_bytes_per_cycle() == 16
        assert m.ridge_intensity("s") == pytest.approx(1.0)
        assert m.ridge_intensity("d") == pytest.approx(0.25)

    def test_machine_id_slug(self):
        assert KUNPENG_920.machine_id == "kunpeng-920"


class TestModelDrift:
    @pytest.mark.slow
    def test_drift_reports_ratio_per_backend(self):
        result = obs.model_drift(GemmProblem(4, 4, 4, "d", batch=64),
                                 repeats=1)
        assert set(result) == {"compiled", "fused"}
        for d in result.values():
            assert d["predicted_seconds"] > 0
            assert d["wall_seconds"] > 0
            assert d["ratio"] == pytest.approx(
                d["wall_seconds"] / d["predicted_seconds"])
