"""Exporter round-trips: Prometheus grammar, deltas, and the HTTP plane."""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import serve as obs_serve
from repro.obs.export import (DeltaExporter, JsonExporter,
                              PrometheusExporter, render, render_stats,
                              snapshot_delta)

#: one Prometheus sample line: name, optional le label, numeric value
SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (\S+)$')
TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def _demo_registry():
    """A registry with one of everything the exporters must render."""
    reg = obs.Registry()
    reg.counter("plan_cache.misses").inc(3)
    reg.counter("tuning.db.entries").set(7)          # a gauge
    for v in (0.0005, 0.004, 0.2, 3.0, 999.0):
        reg.histogram("engine.time_plan.ms").observe(v)
    return reg


class TestPrometheusGrammar:
    def test_every_line_matches_the_exposition_grammar(self):
        text = PrometheusExporter().render(_demo_registry().snapshot())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert TYPE_LINE.match(line), line
                continue
            m = SAMPLE.match(line)
            assert m, f"bad sample line: {line!r}"
            value = m.group(3)
            float(value)                     # must parse as a number

    def test_counter_vs_gauge_kinds(self):
        text = PrometheusExporter().render(_demo_registry().snapshot())
        assert "# TYPE repro_plan_cache_misses counter" in text
        assert "repro_plan_cache_misses 3" in text
        assert "# TYPE repro_tuning_db_entries gauge" in text
        assert "repro_tuning_db_entries 7" in text

    def test_names_sanitized_to_grammar(self):
        reg = obs.Registry()
        reg.counter("weird-name.with.dots").inc()
        text = PrometheusExporter().render(reg.snapshot())
        assert "repro_weird_name_with_dots 1" in text

    def test_histogram_buckets_cumulative_and_le_sorted(self):
        text = PrometheusExporter().render(_demo_registry().snapshot())
        buckets = re.findall(
            r'repro_engine_time_plan_ms_bucket\{le="([^"]+)"\} (\d+)',
            text)
        assert buckets[-1][0] == "+Inf"
        les = [float(le) for le, _ in buckets[:-1]]
        counts = [int(c) for _, c in buckets]
        assert les == sorted(les)
        assert counts == sorted(counts)      # cumulative: non-decreasing
        assert counts[-1] == 5               # +Inf == observation count
        assert "repro_engine_time_plan_ms_count 5" in text

    def test_registry_health_gauges_present(self):
        text = PrometheusExporter().render(obs.Registry().snapshot())
        for name in ("repro_obs_spans_recorded", "repro_obs_spans_dropped",
                     "repro_obs_events_logged", "repro_obs_events_dropped"):
            assert f"# TYPE {name} gauge" in text

    def test_two_scrapes_of_an_idle_registry_are_bit_identical(self):
        reg = _demo_registry()
        exp = PrometheusExporter()
        assert exp.render(reg.snapshot()) == exp.render(reg.snapshot())

    def test_render_does_not_write_into_the_registry(self):
        reg = _demo_registry()
        before = reg.snapshot()
        PrometheusExporter().render(before)
        assert reg.snapshot() == before
        stats = render_stats()               # cost lands in module stats
        assert stats["renders"] >= 1 and stats["seconds"] >= 0.0


class TestJsonAndDispatch:
    def test_json_render_round_trips(self):
        snap = _demo_registry().snapshot()
        loaded = json.loads(JsonExporter().render(snap))
        assert loaded["counters"]["plan_cache.misses"] == 3
        assert loaded["gauge_names"] == ["tuning.db.entries"]

    def test_render_dispatch_and_unknown_format(self):
        snap = _demo_registry().snapshot()
        assert render(snap, "prometheus").startswith("# TYPE")
        json.loads(render(snap, "json"))
        with pytest.raises(ValueError, match="unknown exporter"):
            render(snap, "xml")

    def test_exporters_satisfy_the_protocol(self):
        from repro.obs.export import Exporter
        for exp in (PrometheusExporter(), JsonExporter(), DeltaExporter()):
            assert isinstance(exp, Exporter)


class TestDelta:
    def test_counter_deltas_and_rates_non_negative(self):
        reg = _demo_registry()
        before = reg.snapshot()
        reg.counter("plan_cache.misses").inc(5)
        reg.counter("plan_cache.hits").inc(2)
        delta = snapshot_delta(before, reg.snapshot(), seconds=2.0)
        assert delta["counters"]["plan_cache.misses"] == {
            "delta": 5, "rate": 2.5}
        assert delta["counters"]["plan_cache.hits"] == {
            "delta": 2, "rate": 1.0}
        for entry in delta["counters"].values():
            assert entry["delta"] >= 0 and entry["rate"] >= 0.0

    def test_reset_clamps_to_zero_not_negative(self):
        reg = _demo_registry()
        before = reg.snapshot()
        delta = snapshot_delta(before, obs.Registry().snapshot(), 1.0)
        for entry in delta["counters"].values():
            assert entry["delta"] == 0

    def test_gauges_keep_signed_deltas(self):
        reg = _demo_registry()
        before = reg.snapshot()
        reg.counter("tuning.db.entries").set(4)      # level fell 7 -> 4
        delta = snapshot_delta(before, reg.snapshot(), 1.0)
        assert delta["gauges"]["tuning.db.entries"] == {
            "value": 4, "delta": -3}

    def test_histogram_deltas(self):
        reg = _demo_registry()
        before = reg.snapshot()
        reg.histogram("engine.time_plan.ms").observe(2.0)
        delta = snapshot_delta(before, reg.snapshot(), 1.0)
        h = delta["histograms"]["engine.time_plan.ms"]
        assert h["delta_count"] == 1
        assert h["mean"] == pytest.approx(2.0)

    def test_stateful_delta_exporter_diffs_consecutive_renders(self):
        reg = _demo_registry()
        exp = DeltaExporter()
        first = json.loads(exp.render(reg.snapshot()))
        assert first["counters"]["plan_cache.misses"]["delta"] == 3
        reg.counter("plan_cache.misses").inc()
        second = json.loads(exp.render(reg.snapshot()))
        assert second["counters"]["plan_cache.misses"]["delta"] == 1
        assert second["seconds"] is not None


class _Endpoint:
    """A telemetry server on an ephemeral port, torn down on exit."""

    def __init__(self, registry, **kw):
        self.server = obs_serve.make_server(port=0, registry=registry, **kw)
        self.base = "http://127.0.0.1:%d" % self.server.server_address[1]
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self.server.shutdown()
        self.server.server_close()

    def get(self, path):
        with urllib.request.urlopen(self.base + path, timeout=10) as r:
            return r.status, r.headers["Content-Type"], r.read().decode()


class TestServeHTTP:
    def test_metrics_over_http_equals_direct_render(self):
        reg = _demo_registry()
        with _Endpoint(reg) as ep:
            status, ctype, body = ep.get("/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert body == PrometheusExporter().render(reg.snapshot())

    def test_snapshot_and_healthz(self):
        reg = _demo_registry()
        with _Endpoint(reg) as ep:
            _, _, snap = ep.get("/snapshot.json")
            _, _, health = ep.get("/healthz")
        assert json.loads(snap)["counters"]["plan_cache.misses"] == 3
        health = json.loads(health)
        assert health["status"] == "ok"
        assert health["export"]["renders"] >= 1

    def test_events_endpoint_filters_level_and_count(self):
        reg = obs.Registry()
        for i in range(5):
            reg.events.emit(f"e{i}", "info")
        reg.events.emit("bad", "error")
        with _Endpoint(reg) as ep:
            _, _, all_events = ep.get("/events?n=3")
            _, _, errors = ep.get("/events?level=error")
        assert [r["name"] for r in json.loads(all_events)] == \
            ["e3", "e4", "bad"]
        assert [r["name"] for r in json.loads(errors)] == ["bad"]

    def test_events_endpoint_filters_prefix(self):
        reg = obs.Registry()
        reg.events.emit("serve.reject", "warn")
        reg.events.emit("tuning.fallback", "info")
        reg.events.emit("serve.flush.error", "error")
        with _Endpoint(reg) as ep:
            _, _, serve_only = ep.get("/events?prefix=serve.")
            _, _, combined = ep.get("/events?prefix=serve.&level=error")
        assert [r["name"] for r in json.loads(serve_only)] == \
            ["serve.reject", "serve.flush.error"]
        assert [r["name"] for r in json.loads(combined)] == \
            ["serve.flush.error"]

    def test_events_endpoint_ignores_unknown_level(self):
        # a bad ?level= serves the unfiltered tail instead of a 500
        reg = obs.Registry()
        reg.events.emit("e0", "info")
        with _Endpoint(reg) as ep:
            status, _, body = ep.get("/events?level=bogus")
        assert status == 200
        assert [r["name"] for r in json.loads(body)] == ["e0"]

    def test_add_route_mounts_extra_endpoint(self):
        reg = obs.Registry()
        with _Endpoint(reg) as ep:
            ep.server.add_route(
                "/serve/stats",
                lambda query: ('{"ok": true}\n', "application/json"))
            status, ctype, body = ep.get("/serve/stats")
        assert status == 200
        assert ctype == "application/json"
        assert json.loads(body) == {"ok": True}

    def test_add_route_rejects_relative_path(self):
        server = obs_serve.make_server(port=0, registry=obs.Registry())
        try:
            with pytest.raises(ValueError):
                server.add_route("serve/stats", lambda q: ("", "text/plain"))
        finally:
            server.server_close()

    def test_trajectory_endpoint_serves_the_file(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        path.write_text('[{"schema": 2}]')
        reg = obs.Registry()
        with _Endpoint(reg, trajectory_path=str(path)) as ep:
            _, _, body = ep.get("/trajectory")
        assert json.loads(body) == [{"schema": 2}]

    def test_missing_trajectory_serves_empty_list(self):
        with _Endpoint(obs.Registry(),
                       trajectory_path="/nonexistent/t.json") as ep:
            _, _, body = ep.get("/trajectory")
        assert json.loads(body) == []

    def test_unknown_path_is_404(self):
        with _Endpoint(obs.Registry()) as ep:
            with pytest.raises(urllib.error.HTTPError) as err:
                ep.get("/nope")
        assert err.value.code == 404

    def test_scraping_does_not_perturb_the_registry(self):
        reg = _demo_registry()
        before = reg.snapshot()
        with _Endpoint(reg) as ep:
            for path in ("/metrics", "/snapshot.json", "/healthz"):
                ep.get(path)
        assert reg.snapshot() == before


class TestElapsedGuard:
    """Zero/negative elapsed must disable rates, not divide by them."""

    def test_zero_elapsed_yields_no_rates(self):
        reg = _demo_registry()
        before = reg.snapshot()
        reg.counter("plan_cache.misses").inc(5)
        delta = snapshot_delta(before, reg.snapshot(), seconds=0.0)
        assert delta["seconds"] is None
        assert delta["counters"]["plan_cache.misses"] == {"delta": 5}

    def test_negative_elapsed_yields_no_rates(self):
        # a clock step backwards between scrapes must not mint a
        # negative rate (or an infinite one)
        reg = _demo_registry()
        before = reg.snapshot()
        reg.counter("plan_cache.misses").inc(5)
        delta = snapshot_delta(before, reg.snapshot(), seconds=-1.0)
        assert delta["seconds"] is None
        assert "rate" not in delta["counters"]["plan_cache.misses"]
