"""Flight recorder: rings mirror live telemetry, triggers freeze them.

The end-to-end test injects a poisoned bucket into a running
:class:`BlasService` and asserts the failure froze a post-mortem that
replays the spans and events leading up to it — the recorder's whole
reason to exist.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.flight import FlightRecorder, get_flight, install_flight


class TestRings:
    def test_attach_mirrors_spans_and_events(self):
        with obs.scoped():
            rec = FlightRecorder().attach()
            with obs.span("work.outer"):
                with obs.span("work.inner"):
                    pass
            obs.event("work.done", items=3)
            snap = rec.snapshot()
        names = [s["name"] for s in snap["spans"]]
        assert names == ["work.inner", "work.outer"]   # completion order
        assert [e["name"] for e in snap["events"]] == ["work.done"]

    def test_rings_keep_the_most_recent_past_capacity(self):
        with obs.scoped():
            rec = FlightRecorder(spans=4).attach()
            for i in range(10):
                with obs.span("s", i=i):
                    pass
            snap = rec.snapshot()
        assert [s["args"]["i"] for s in snap["spans"]] == [6, 7, 8, 9]

    def test_detach_stops_the_mirror(self):
        with obs.scoped() as reg:
            rec = FlightRecorder().attach()
            FlightRecorder.detach()
            with obs.span("quiet"):
                pass
            obs.event("quiet.event")
        assert reg.snapshot()["spans"] == 1       # still recorded...
        assert rec.snapshot()["spans"] == []      # ...but not mirrored
        assert rec.snapshot()["events"] == []

    def test_disabled_obs_feeds_nothing(self):
        rec = FlightRecorder()
        with obs.scoped():
            rec.attach()
        assert not obs.enabled()
        with obs.span("never"):
            pass
        obs.event("never.event")
        snap = rec.snapshot()
        assert snap["spans"] == [] and snap["events"] == []


class TestTriggers:
    def test_reject_storm_triggers_one_dump_within_cooldown(self):
        rec = FlightRecorder(storm_window_s=10.0, storm_threshold=5,
                             cooldown_s=30.0)
        dumps = [rec.note_reject("hog", now=100.0 + 0.1 * i)
                 for i in range(20)]
        produced = [d for d in dumps if d is not None]
        assert len(produced) == 1
        assert produced[0]["trigger"] == "reject_storm"
        assert produced[0]["detail"]["tenant"] == "hog"
        assert rec.dumps == 1
        assert rec.suppressed > 0

    def test_rejects_outside_the_window_do_not_storm(self):
        rec = FlightRecorder(storm_window_s=1.0, storm_threshold=5)
        for i in range(20):
            assert rec.note_reject("slow", now=100.0 + 2.0 * i) is None
        assert rec.dumps == 0

    def test_cooldown_expires_and_a_second_incident_dumps(self):
        rec = FlightRecorder(cooldown_s=30.0)
        assert rec.trigger("flush_error", now=100.0) is not None
        assert rec.trigger("flush_error", now=110.0) is None
        assert rec.trigger("flush_error", now=140.0) is not None
        assert rec.dumps == 2 and rec.suppressed == 1

    def test_on_demand_dump_is_never_rate_limited(self):
        rec = FlightRecorder()
        assert rec.dump("on_demand")["trigger"] == "on_demand"
        assert rec.dump("on_demand") is not None
        assert rec.dumps == 2

    def test_dump_dir_writes_one_json_file_per_dump(self, tmp_path):
        rec = FlightRecorder(dump_dir=str(tmp_path))
        rec.note_pulse({"flushes": 1})
        dump = rec.dump("unit_test", why="testing")
        with open(dump["path"]) as f:
            loaded = json.load(f)
        assert loaded["trigger"] == "unit_test"
        assert loaded["detail"] == {"why": "testing"}
        assert loaded["stats_pulses"] == [{"flushes": 1}]

    def test_route_on_demand_vs_last_triggered(self):
        rec = FlightRecorder()
        rec.trigger("reject_storm", now=100.0)
        body, ctype = rec.route({"last": "1"})
        assert ctype == "application/json"
        assert json.loads(body)["trigger"] == "reject_storm"
        body, _ = rec.route({})
        assert json.loads(body)["trigger"] == "on_demand"


class TestInstallGlobal:
    def test_install_flight_is_idempotent(self):
        with obs.scoped():
            first = install_flight()
            again = install_flight()
            assert first is again is get_flight()
            mine = FlightRecorder()
            assert install_flight(mine) is mine
            assert get_flight() is mine


class TestServiceIntegration:
    def test_poisoned_bucket_freezes_a_post_mortem(self):
        from repro.serve import BlasService, Request
        rng = np.random.default_rng(13)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        rec = FlightRecorder()
        with obs.scoped():
            with BlasService(max_batch=2, max_wait_ms=0.5,
                             flight=rec) as svc:
                ok = svc.submit(Request.gemm(a, a)).result(timeout=60.0)
                bad = Request.gemm(a, a)
                # sabotage the operands post-validation: the flush fails
                object.__setattr__(bad, "a", np.ones(3, dtype=np.float32))
                with pytest.raises(Exception):
                    svc.submit(bad).result(timeout=60.0)
        assert ok is not None
        dump = rec.last_dump
        assert dump is not None and dump["trigger"] == "flush_error"
        assert dump["detail"]["requests"] == 1
        # the post-mortem replays the history: the healthy request's
        # spans and the failure's error event are both in the rings
        assert any(s["name"] == "serve.request" for s in dump["spans"])
        assert any(e["name"] == "serve.flush.error"
                   for e in dump["events"])
        assert any(p.get("error") for p in dump["stats_pulses"])
        stats = svc.stats()["flight"]
        assert stats["dumps"] == 1

    def test_stats_counts_ring_depths(self):
        rec = FlightRecorder()
        rec.note_pulse({"flushes": 1})
        rec.note_event({"name": "e"})
        assert rec.stats() == {"spans": 0, "events": 1,
                               "stats_pulses": 1, "dumps": 0,
                               "suppressed": 0}
