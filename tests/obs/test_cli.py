"""Tests for the `python -m repro.obs` command line."""

import json

import pytest

from repro import obs
from repro.obs.__main__ import main


def test_self_check_flag(capsys):
    assert main(["--self-check"]) == 0
    assert "self-check OK" in capsys.readouterr().out


def test_self_check_subcommand(capsys):
    assert main(["self-check"]) == 0
    assert "self-check OK" in capsys.readouterr().out


def test_snapshot_dumps_registry(capsys):
    assert main(["snapshot"]) == 0
    out = capsys.readouterr().out
    assert "plan_cache.misses" in out
    assert "pack_selector" in out
    assert "codegen.generated" in out


def test_snapshot_writes_valid_trace(capsys, tmp_path):
    path = tmp_path / "demo.trace.json"
    assert main(["snapshot", "--trace-out", str(path)]) == 0
    assert path.exists()
    with open(path) as f:
        obs.validate_chrome_trace(json.load(f))
    assert "wrote" in capsys.readouterr().out


def test_explain_gemm(capsys):
    assert main(["explain", "gemm", "--m", "9", "--n", "9", "--k", "9",
                 "--batch", "256"]) == 0
    out = capsys.readouterr().out
    assert "batch counter" in out
    assert "pack selector" in out
    assert "tile decomposition" in out


def test_explain_trsm_deep(capsys):
    assert main(["explain", "trsm", "--m", "4", "--n", "4",
                 "--batch", "256", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "mode normalization" in out
    assert "timing breakdown" in out


def test_explain_trsm_blas_mode_order(capsys):
    """--mode letters follow BLAS order: side, uplo, trans, diag."""
    assert main(["explain", "trsm", "--m", "4", "--n", "4",
                 "--batch", "64", "--mode", "RUTU"]) == 0
    out = capsys.readouterr().out
    assert "Side.RIGHT" in out and "UpLo.UPPER" in out


def test_explain_rejects_bad_mode_and_degenerate_problem(capsys):
    assert main(["explain", "trsm", "--m", "4", "--n", "4",
                 "--mode", "XX"]) == 2
    assert "side/uplo/trans/diag" in capsys.readouterr().out
    assert main(["explain", "gemm", "--m", "0", "--n", "4",
                 "--k", "4"]) == 2
    assert "error:" in capsys.readouterr().out


def test_explain_autotune(capsys):
    assert main(["explain", "gemm", "--m", "9", "--n", "9", "--k", "9",
                 "--batch", "256", "--autotune"]) == 0
    assert "autotune sweep" in capsys.readouterr().out


def test_profile_gemm_writes_artifacts(capsys, tmp_path):
    jpath = tmp_path / "p.json"
    fpath = tmp_path / "p.folded"
    tpath = tmp_path / "p.trace.json"
    assert main(["profile", "gemm", "--m", "8", "--n", "8", "--k", "8",
                 "--batch", "16384", "--json", str(jpath),
                 "--flame", str(fpath), "--trace-out", str(tpath)]) == 0
    out = capsys.readouterr().out
    assert "% of peak" in out and "conserved" in out
    with open(jpath) as f:
        d = json.load(f)
    assert sum(c["cycles"] for c in d["classes"]) == d["kernel_cycle_budget"]
    assert fpath.read_text().strip()
    with open(tpath) as f:
        obs.validate_chrome_trace(json.load(f))


def test_profile_trsm_fused_stream(capsys):
    assert main(["profile", "trsm", "--m", "4", "--n", "4",
                 "--batch", "256", "--stream", "fused"]) == 0
    assert "MACC" in capsys.readouterr().out


def test_profile_rejects_degenerate_problem(capsys):
    assert main(["profile", "gemm", "--m", "0", "--n", "4",
                 "--k", "4"]) == 2
    assert "error:" in capsys.readouterr().out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_cli_leaves_global_state_untouched():
    before = obs.get_registry()
    assert main(["--self-check"]) == 0
    assert obs.get_registry() is before
    assert not obs.enabled()
