"""SLO burn rates: specs validate, verdicts flip, ``/slo`` serves JSON.

The verdict tests drive the monitor with synthetic snapshot pairs —
the evaluation is a pure function of two snapshots, so injected
deadline-miss/reject/latency traffic flips verdicts deterministically
with no sleeping and no service.
"""

import json

import pytest

from repro import obs
from repro.obs.slo import KINDS, SLOMonitor, SLOSpec, default_specs


def spec(kind="deadline_miss", **over):
    base = dict(name="t-slo", tenant="t", kind=kind,
                objective=(250.0 if kind == "latency" else 0.01),
                fast_window_s=10.0, slow_window_s=60.0)
    base.update(over)
    return SLOSpec(**base)


def miss_snap(done, missed):
    return {"counters": {"serve.tenant.t.completed": done,
                         "serve.tenant.t.deadline_missed": missed}}


def fed(specs, samples):
    """A monitor with ``samples`` = [(t, snapshot), ...] preloaded."""
    mon = SLOMonitor(specs=specs)
    for t, snap in samples:
        mon._samples.append((t, snap))
    return mon


class TestSpecValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            spec(kind="vibes")

    def test_rejects_ratio_objective_of_one_or_more(self):
        with pytest.raises(ValueError, match="ratio"):
            spec(kind="reject", objective=1.5)

    def test_rejects_fast_window_exceeding_slow(self):
        with pytest.raises(ValueError, match="must not exceed"):
            spec(fast_window_s=120.0, slow_window_s=60.0)

    def test_allowed_ratio_latency_is_one_minus_quantile(self):
        s = spec(kind="latency", quantile=0.99)
        assert s.allowed_ratio == pytest.approx(0.01)
        assert spec(kind="reject", objective=0.05).allowed_ratio == 0.05

    def test_default_specs_cover_every_kind(self):
        specs = default_specs("alice")
        assert {s.kind for s in specs} == set(KINDS)
        assert all(s.tenant == "alice" for s in specs)


class TestVerdicts:
    def test_no_traffic_is_no_data(self):
        mon = fed([spec()], [(0.0, miss_snap(0, 0)),
                             (100.0, miss_snap(0, 0))])
        assert mon.evaluate(now=100.0)[0]["verdict"] == "no_data"

    def test_healthy_traffic_is_ok(self):
        mon = fed([spec()], [(0.0, miss_snap(0, 0)),
                             (100.0, miss_snap(1000, 1))])
        v = mon.evaluate(now=100.0)[0]
        assert v["verdict"] == "ok"
        assert v["slow"]["burn"] == pytest.approx(0.1)

    def test_injected_misses_flip_the_verdict_to_page(self):
        samples = [(0.0, miss_snap(0, 0)), (100.0, miss_snap(1000, 1))]
        mon = fed([spec()], samples)
        assert mon.evaluate(now=100.0)[0]["verdict"] == "ok"
        # inject a miss storm: 50% of the next 200 requests miss —
        # burning 50x the 1% budget in both windows
        mon._samples.append((200.0, miss_snap(1200, 101)))
        v = mon.evaluate(now=200.0)[0]
        assert v["verdict"] == "page"
        assert v["fast"]["burn"] >= v["page_burn"]
        assert v["slow"]["burn"] >= v["page_burn"]

    def test_fast_burn_alone_does_not_page(self):
        # a short blip: the fast window burns but the long window has
        # absorbed enough good traffic to stay under the page rate
        s = spec(page_burn=6.0)
        mon = fed([s], [(0.0, miss_snap(0, 0)),
                        (140.0, miss_snap(100_000, 10)),
                        (190.0, miss_snap(100_900, 10)),
                        (200.0, miss_snap(101_000, 60))])
        v = mon.evaluate(now=200.0)[0]
        assert v["fast"]["burn"] >= s.page_burn
        assert v["slow"]["burn"] < s.page_burn
        assert v["verdict"] in ("ok", "warn")

    def test_reject_kind_counts_rejections_against_submissions(self):
        def snap(sub, rej):
            return {"counters": {"serve.tenant.t.submitted": sub,
                                 "serve.tenant.t.rejected": rej}}
        s = spec(kind="reject", objective=0.05)
        mon = fed([s], [(0.0, snap(0, 0)), (100.0, snap(50, 50))])
        v = mon.evaluate(now=100.0)[0]
        assert v["slow"]["ratio"] == pytest.approx(0.5)
        assert v["verdict"] == "page"

    def test_latency_kind_reads_histogram_bucket_deltas(self):
        def snap(fast_n, slow_n):
            reg = obs.Registry()
            h = reg.histogram("serve.tenant.t.wait_ms")
            for _ in range(fast_n):
                h.observe(1.0)                    # under the objective
            for _ in range(slow_n):
                h.observe(10_000.0)               # way over
            return reg.snapshot()
        s = spec(kind="latency", objective=250.0, quantile=0.99)
        mon = fed([s], [(0.0, snap(0, 0)), (100.0, snap(80, 20))])
        v = mon.evaluate(now=100.0)[0]
        assert v["slow"]["ratio"] == pytest.approx(0.2)
        assert v["verdict"] == "page"              # 20x the 1% budget


class TestMonitorPlumbing:
    def test_window_truncates_to_monitor_age(self):
        # two samples 10s apart, a 600s window: the oldest sample is
        # the base, so a young monitor still produces verdicts
        mon = fed([spec(fast_window_s=600.0, slow_window_s=600.0)],
                  [(0.0, miss_snap(0, 0)), (10.0, miss_snap(100, 50))])
        assert mon.evaluate(now=10.0)[0]["verdict"] == "page"

    def test_route_samples_live_registry_and_serves_json(self):
        with obs.scoped():
            obs.count("serve.tenant.t.completed", 100)
            mon = SLOMonitor(specs=[spec()])
            mon.sample(now=0.0)
            obs.count("serve.tenant.t.completed", 100)
            obs.count("serve.tenant.t.deadline_missed", 100)
            body, ctype = mon.route({})
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["worst"] == "page"
        assert payload["samples"] == 2
        (v,) = payload["slos"]
        assert v["name"] == "t-slo" and v["verdict"] == "page"

    def test_dump_reports_worst_verdict_across_specs(self):
        mon = fed([spec(name="quiet", tenant="q"), spec()],
                  [(0.0, miss_snap(0, 0)), (100.0, miss_snap(100, 50))])
        dump = mon.dump(now=100.0)
        by_name = {v["name"]: v["verdict"] for v in dump["slos"]}
        assert by_name == {"quiet": "no_data", "t-slo": "page"}
        assert dump["worst"] == "page"
