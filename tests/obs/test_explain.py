"""explain(plan): every run-time-stage decision must be narrated."""

import pytest

from repro import IATF, KUNPENG_920, obs
from repro.types import GemmProblem, TrsmProblem


@pytest.fixture(scope="module")
def iatf():
    return IATF(KUNPENG_920)


class TestGemmExplain:
    def test_sections_present(self, iatf):
        report = iatf.explain_gemm(GemmProblem(9, 9, 9, "d", batch=4096))
        titles = [t for t, _ in report.sections]
        assert any("batch counter" in t for t in titles)
        assert any("pack selector" in t for t in titles)
        assert any("tile decomposition" in t for t in titles)

    def test_plan_cache_section_surfaces_hit_rate(self, iatf):
        p = GemmProblem(7, 7, 7, "d", batch=512)
        iatf.explain_gemm(p)                      # warm: next lookup hits
        report = iatf.explain_gemm(p)
        lines = report.section("plan cache")
        text = "\n".join(lines)
        assert "hit rate" in text
        stats = iatf.plan_cache_stats
        assert f"{100.0 * stats['hit_rate']:.1f}%" in text
        assert f"{stats['size']} / {stats['maxsize']}" in text
        assert "evictions" in text

    def test_plan_cache_section_absent_without_stats(self, iatf):
        plan = iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=64))
        report = obs.explain(plan)                # free function, no stats
        assert "plan cache" not in [t for t, _ in report.sections]

    def test_batch_counter_math_narrated(self, iatf):
        p = GemmProblem(8, 8, 8, "d", batch=4096)
        report = iatf.explain_gemm(p)
        text = report.render()
        plan = iatf.plan_gemm(p)
        assert f"groups per round: {plan.groups_per_round}" in text
        assert str(KUNPENG_920.l1.size) in text
        assert "L1" in text

    def test_pack_decision_and_reasons(self, iatf):
        # transposed A forces packing; the reason must say so
        p = GemmProblem(4, 4, 4, "d", transa="T", batch=256)
        text = iatf.explain_gemm(p).render()
        assert "reason A: transposed operand" in text

    def test_tile_decomposition_shows_cmar_tiles(self, iatf):
        p = GemmProblem(9, 9, 9, "d", batch=256)
        plan = iatf.plan_gemm(p)
        text = iatf.explain_gemm(p).render()
        assert f"m tiles: 9 -> {plan.meta['m_tiles']}" in text
        assert f"n tiles: 9 -> {plan.meta['n_tiles']}" in text

    def test_autotune_sweep_reported_per_candidate(self, iatf):
        p = GemmProblem(9, 9, 9, "d", batch=512)
        report = iatf.explain_gemm(p, autotune=True)
        text = report.render()
        assert "autotune sweep" in text
        assert "<- chosen" in text
        sweep = iatf.plan_gemm(p, autotune=True).meta["autotune_sweep"]
        assert len(sweep) == len(IATF.GEMM_TUNE_CANDIDATES_REAL)
        for entry in sweep:
            assert str(entry["candidate"]) in text

    def test_deep_adds_timing_breakdown(self, iatf):
        p = GemmProblem(6, 6, 6, "d", batch=1024)
        text = iatf.explain_gemm(p, deep=True).render()
        assert "timing breakdown" in text
        for needle in ("kernel:", "pack:", "unpack:", "overhead:",
                       "stall cycles", "L1 misses", "GFLOPS"):
            assert needle in text

    def test_deep_pack_comparison_when_nopack_chosen(self, iatf):
        # m fits one tile, A non-transposed -> A goes no-pack
        p = GemmProblem(4, 9, 4, "d", batch=1024)
        plan = iatf.plan_gemm(p)
        assert plan.meta["packing"]["A"] == "no-pack"
        text = iatf.explain_gemm(p, deep=True).render()
        assert "cost comparison" in text
        assert "forced-pack alternative" in text


class TestTrsmExplain:
    def test_sections_present(self, iatf):
        report = iatf.explain_trsm(TrsmProblem(4, 4, "d", batch=4096))
        titles = [t for t, _ in report.sections]
        assert any("batch counter" in t for t in titles)
        assert any("pack selector" in t for t in titles)
        assert any("tile decomposition" in t for t in titles)

    def test_nopack_reason_and_comparison(self, iatf):
        p = TrsmProblem(4, 4, "d", batch=4096)   # LNLN in-register case
        text = iatf.explain_trsm(p, deep=True).render()
        assert "no-pack" in text
        assert "canonical orientation" in text
        assert "cost comparison" in text

    def test_blocked_path_narrates_blocks(self, iatf):
        p = TrsmProblem(12, 8, "d", batch=256)   # beyond max_tri -> blocked
        plan = iatf.plan_trsm(p)
        assert not plan.meta["whole_in_regs"]
        text = iatf.explain_trsm(p).render()
        assert f"diagonal blocks: {plan.meta['blocks']}" in text
        assert f"n_pad={plan.meta['n_pad']}" in text

    def test_mode_normalization_shown(self, iatf):
        p = TrsmProblem(4, 4, "d", side="R", uplo="U", batch=64)
        text = iatf.explain_trsm(p).render()
        assert "mode normalization" in text


class TestReportObject:
    def test_to_dict_is_structured(self, iatf):
        p = GemmProblem(4, 4, 4, "d", batch=64)
        d = iatf.explain_gemm(p).to_dict()
        assert d["kind"] == "gemm"
        assert any("batch counter" in k for k in d["sections"])

    def test_section_lookup(self, iatf):
        p = GemmProblem(4, 4, 4, "d", batch=64)
        report = iatf.explain_gemm(p)
        lines = report.section("pack selector (Section 5.2)")
        assert any("strategy" in line for line in lines)
        with pytest.raises(KeyError):
            report.section("nonexistent")

    def test_explain_free_function_matches_method(self, iatf):
        p = GemmProblem(4, 4, 4, "d", batch=64)
        plan = iatf.plan_gemm(p)
        via_fn = obs.explain(plan, registry=iatf.registry)
        via_method = iatf.explain_gemm(p)
        # the method knows the framework's backend and plan-cache stats
        # and adds those sections; everything else must agree with the
        # plain free-function report
        fn_d, method_d = via_fn.to_dict(), via_method.to_dict()
        backend_section = method_d["sections"].pop("execution backend")
        method_d["sections"].pop("plan cache")
        assert fn_d == method_d
        assert any(iatf.backend.name in line for line in backend_section)

    def test_explain_names_backend_and_lowering(self, iatf):
        p = GemmProblem(4, 4, 4, "d", batch=64)
        report = iatf.explain_gemm(p)
        lines = report.section("execution backend")
        assert any("compiled" in line for line in lines)
        assert any("commands" in line for line in lines)

    def test_explain_shows_pass_pipeline_stats(self):
        fw = IATF(KUNPENG_920, backend="fused")
        p = GemmProblem(8, 8, 8, "s", batch=64)
        lines = fw.explain_gemm(p).section("execution backend")
        assert any("pass pipeline" in line for line in lines)
        assert any("fused chains" in line for line in lines)

    def test_explain_shows_parallel_sharding(self):
        fw = IATF(KUNPENG_920, backend="parallel", workers=3)
        p = GemmProblem(4, 4, 4, "d", batch=64)
        lines = fw.explain_gemm(p).section("execution backend")
        assert any("3 thread workers" in line and "fused" in line
                   for line in lines)
