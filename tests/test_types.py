"""Tests for the core type system (dtypes, flags, problem descriptors)."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.types import (BlasDType, Diag, GemmProblem, Side, Trans,
                         TrsmProblem, UpLo, gemm_flops, trsm_flops)


class TestBlasDType:
    @pytest.mark.parametrize("prefix,npdt", [
        ("s", np.float32), ("d", np.float64),
        ("c", np.complex64), ("z", np.complex128),
    ])
    def test_np_dtype_mapping(self, prefix, npdt):
        assert BlasDType.from_any(prefix).np_dtype == np.dtype(npdt)
        assert BlasDType.from_any(npdt) is BlasDType(prefix)

    def test_from_any_uppercase(self):
        assert BlasDType.from_any("S") is BlasDType.S

    def test_from_any_identity(self):
        assert BlasDType.from_any(BlasDType.Z) is BlasDType.Z

    def test_from_any_rejects_unsupported(self):
        with pytest.raises(InvalidProblemError):
            BlasDType.from_any(np.int32)

    @pytest.mark.parametrize("prefix,real", [
        ("s", np.float32), ("d", np.float64),
        ("c", np.float32), ("z", np.float64),
    ])
    def test_real_plane_dtype(self, prefix, real):
        assert BlasDType.from_any(prefix).real_dtype == np.dtype(real)

    def test_is_complex(self):
        assert not BlasDType.S.is_complex
        assert not BlasDType.D.is_complex
        assert BlasDType.C.is_complex
        assert BlasDType.Z.is_complex

    @pytest.mark.parametrize("prefix,expect", [
        ("s", 4), ("d", 2), ("c", 4), ("z", 2),
    ])
    def test_lanes_on_128bit(self, prefix, expect):
        """The paper's P: 4 for single precision on Kunpeng 920."""
        assert BlasDType.from_any(prefix).lanes(16) == expect

    @pytest.mark.parametrize("prefix,expect", [
        ("s", 16), ("d", 8), ("c", 16), ("z", 8),
    ])
    def test_lanes_on_512bit(self, prefix, expect):
        assert BlasDType.from_any(prefix).lanes(64) == expect

    def test_flops_per_madd(self):
        assert BlasDType.D.flops_per_madd == 2
        assert BlasDType.Z.flops_per_madd == 8

    def test_itemsize(self):
        assert BlasDType.C.itemsize == 8
        assert BlasDType.C.real_itemsize == 4
        assert BlasDType.Z.itemsize == 16


class TestFlags:
    def test_trans_from_bool(self):
        assert Trans.from_any(True) is Trans.T
        assert Trans.from_any(False) is Trans.N

    def test_trans_from_str_case(self):
        assert Trans.from_any("t") is Trans.T

    def test_trans_invalid(self):
        with pytest.raises(InvalidProblemError):
            Trans.from_any("C")

    def test_side_uplo_diag(self):
        assert Side.from_any("r") is Side.RIGHT
        assert UpLo.from_any("u") is UpLo.UPPER
        assert Diag.from_any("U") is Diag.UNIT

    @pytest.mark.parametrize("cls", [Side, UpLo, Diag])
    def test_invalid_flag(self, cls):
        with pytest.raises(InvalidProblemError):
            cls.from_any("x")


class TestGemmProblem:
    def test_basic(self):
        p = GemmProblem(4, 5, 6, "d", batch=7)
        assert p.a_shape == (4, 6)
        assert p.b_shape == (6, 5)
        assert p.c_shape == (4, 5)
        assert p.mode == "NN"

    def test_transposed_shapes(self):
        p = GemmProblem(4, 5, 6, "d", "T", "T")
        assert p.a_shape == (6, 4)
        assert p.b_shape == (5, 6)
        assert p.mode == "TT"

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_dims(self, bad):
        with pytest.raises(InvalidProblemError):
            GemmProblem(bad, 1, 1, "d")

    def test_rejects_float_dim(self):
        with pytest.raises(InvalidProblemError):
            GemmProblem(1.5, 1, 1, "d")

    def test_rejects_complex_alpha_for_real(self):
        with pytest.raises(InvalidProblemError):
            GemmProblem(1, 1, 1, "d", alpha=1 + 1j)

    def test_complex_alpha_for_complex(self):
        p = GemmProblem(1, 1, 1, "z", alpha=1 + 1j)
        assert p.alpha == 1 + 1j

    def test_flops(self):
        assert GemmProblem(2, 3, 4, "d", batch=10).flops == 2 * 2 * 3 * 4 * 10
        assert GemmProblem(2, 3, 4, "z", batch=10).flops == 8 * 2 * 3 * 4 * 10

    def test_with_batch(self):
        p = GemmProblem(2, 3, 4, "d", batch=1).with_batch(100)
        assert p.batch == 100
        assert p.m == 2

    def test_frozen_and_hashable(self):
        p = GemmProblem(2, 3, 4, "d")
        assert hash(p) == hash(GemmProblem(2, 3, 4, "d"))


class TestTrsmProblem:
    def test_mode_string_matches_paper(self):
        p = TrsmProblem(4, 5, "d", "L", "L", "N", "N")
        assert p.mode == "LNLN"   # Left, Non-transpose, Lower, NonUnit
        p = TrsmProblem(4, 5, "d", "L", "U", "T", "N")
        assert p.mode == "LTUN"

    def test_a_dim_left_right(self):
        assert TrsmProblem(4, 5, "d", side="L").a_dim == 4
        assert TrsmProblem(4, 5, "d", side="R").a_dim == 5

    def test_flops_sides(self):
        assert trsm_flops(4, 5, "d", "L") == 5 * 16
        assert trsm_flops(4, 5, "d", "R") == 4 * 25
        assert trsm_flops(4, 5, "z", "L") == 4 * 5 * 16

    def test_rejects_complex_alpha_for_real(self):
        with pytest.raises(InvalidProblemError):
            TrsmProblem(2, 2, "s", alpha=1j)


def test_gemm_flops_helper():
    assert gemm_flops(3, 3, 3, "s") == 54
    assert gemm_flops(3, 3, 3, "c", batch=2) == 8 * 27 * 2


class TestTrmmProblem:
    def test_basic(self):
        from repro.types import TrmmProblem, trmm_flops
        p = TrmmProblem(4, 5, "d", "L", "L", "N", "N", batch=3, alpha=2.0)
        assert p.mode == "LNLN"
        assert p.a_dim == 4
        assert p.b_shape == (4, 5)
        assert p.flops == trmm_flops(4, 5, "d", "L", 3) == 3 * 5 * 16

    def test_right_side_dims(self):
        from repro.types import TrmmProblem
        assert TrmmProblem(4, 5, "d", side="R").a_dim == 5

    def test_rejects_complex_alpha_for_real(self):
        from repro.errors import InvalidProblemError
        from repro.types import TrmmProblem
        import pytest as _pytest
        with _pytest.raises(InvalidProblemError):
            TrmmProblem(2, 2, "s", alpha=1j)

    def test_hashable(self):
        from repro.types import TrmmProblem
        assert hash(TrmmProblem(2, 2, "d")) == hash(TrmmProblem(2, 2, "d"))
